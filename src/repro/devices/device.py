"""DPM-enabled device model (paper Table 1 parameters).

:class:`DeviceParams` is the bundle of currents and transition overheads
the optimization framework consumes (Section 3.3.2); :class:`DPMDevice`
is the stateful device the simulator drives through RUN / STANDBY /
SLEEP, accounting for transition latency and charge.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..errors import ConfigurationError
from .states import PowerState, PowerStateMachine, Transition, break_even_time


@dataclass(frozen=True)
class DeviceParams:
    """Electrical parameters of a three-state DPM device.

    All currents are on the regulated 12 V rail (amperes); times in
    seconds.  Matches paper Table 1.

    Attributes
    ----------
    i_run:
        Default RUN (active) current; task slots may override it.
    i_sdb, i_slp:
        STANDBY / SLEEP currents (``Isdb``, ``Islp``).
    t_pd, t_wu:
        SLEEP entry / exit latencies (``tau_PD``, ``tau_WU``).
    i_pd, i_wu:
        Currents during SLEEP entry / exit (``IPD``, ``IWU``).
    t_sdb_to_run, t_run_to_sdb:
        STANDBY <-> RUN latencies; the paper absorbs these into the
        active period (Section 3.3.2 assumption 2) with RUN current.
    t_be:
        DPM break-even time; if ``None`` it is derived with
        :func:`~repro.devices.states.break_even_time`.
    v_rail:
        Rail voltage used when constructing from powers.
    """

    i_run: float
    i_sdb: float
    i_slp: float
    t_pd: float = 0.0
    t_wu: float = 0.0
    i_pd: float = 0.0
    i_wu: float = 0.0
    t_sdb_to_run: float = 0.0
    t_run_to_sdb: float = 0.0
    t_be: float | None = None
    v_rail: float = 12.0

    def __post_init__(self) -> None:
        currents = (self.i_run, self.i_sdb, self.i_slp, self.i_pd, self.i_wu)
        if min(currents) < 0:
            raise ConfigurationError("currents must be non-negative")
        if min(self.t_pd, self.t_wu, self.t_sdb_to_run, self.t_run_to_sdb) < 0:
            raise ConfigurationError("latencies must be non-negative")
        if self.i_slp > self.i_sdb:
            raise ConfigurationError("SLEEP must draw no more than STANDBY")
        if self.t_be is not None and self.t_be < 0:
            raise ConfigurationError("break-even time cannot be negative")

    @classmethod
    def from_powers(
        cls,
        p_run: float,
        p_sdb: float,
        p_slp: float,
        v_rail: float = 12.0,
        **kwargs,
    ) -> "DeviceParams":
        """Build from state powers (W) on a ``v_rail`` rail."""
        return cls(
            i_run=units.power_to_current(p_run, v_rail),
            i_sdb=units.power_to_current(p_sdb, v_rail),
            i_slp=units.power_to_current(p_slp, v_rail),
            v_rail=v_rail,
            **kwargs,
        )

    @property
    def break_even(self) -> float:
        """Effective break-even time ``Tbe`` (explicit or derived)."""
        if self.t_be is not None:
            return self.t_be
        if self.i_sdb == self.i_slp:
            return self.t_pd + self.t_wu
        return break_even_time(
            self.t_pd, self.t_wu, self.i_pd, self.i_wu, self.i_sdb, self.i_slp
        )

    @property
    def sleep_overhead_charge(self) -> float:
        """Charge of one full SLEEP round trip (A-s)."""
        return self.i_pd * self.t_pd + self.i_wu * self.t_wu

    def idle_charge(self, t_idle: float, sleep: bool) -> float:
        """Load charge (A-s) of an idle period of length ``t_idle``.

        With ``sleep=True`` the period hosts a SLEEP round trip: the
        power-down and wake-up intervals draw their own currents and the
        remainder sits at ``i_slp``.  Idle periods shorter than the
        transition latency cannot sleep.
        """
        if t_idle < 0:
            raise ConfigurationError("idle length cannot be negative")
        if not sleep:
            return self.i_sdb * t_idle
        overhead = self.t_pd + self.t_wu
        if t_idle < overhead:
            raise ConfigurationError(
                f"idle period {t_idle:.3f} s cannot host a "
                f"{overhead:.3f} s sleep transition"
            )
        return self.sleep_overhead_charge + self.i_slp * (t_idle - overhead)

    def state_machine(self) -> PowerStateMachine:
        """Materialize the Fig. 6 state machine for this parameter set."""
        return PowerStateMachine(
            state_currents={
                PowerState.RUN: self.i_run,
                PowerState.STANDBY: self.i_sdb,
                PowerState.SLEEP: self.i_slp,
            },
            transitions=[
                Transition(
                    PowerState.STANDBY, PowerState.RUN, self.t_sdb_to_run, self.i_run
                ),
                Transition(
                    PowerState.RUN, PowerState.STANDBY, self.t_run_to_sdb, self.i_run
                ),
                Transition(
                    PowerState.STANDBY, PowerState.SLEEP, self.t_pd, self.i_pd
                ),
                Transition(
                    PowerState.SLEEP, PowerState.STANDBY, self.t_wu, self.i_wu
                ),
            ],
            initial=PowerState.STANDBY,
        )


class DPMDevice:
    """Stateful three-state device driven by the simulator.

    Tracks cumulative load charge and time per state so simulations can
    report where the charge went.
    """

    def __init__(self, params: DeviceParams) -> None:
        self.params = params
        self.machine = params.state_machine()
        self.time_in_state: dict[PowerState, float] = {s: 0.0 for s in PowerState}
        self.charge_in_state: dict[PowerState, float] = {s: 0.0 for s in PowerState}
        self.transition_charge = 0.0
        self.transition_time = 0.0
        self.n_sleeps = 0

    @property
    def state(self) -> PowerState:
        """Present power state."""
        return self.machine.state

    def dwell(self, dt: float, current: float | None = None) -> float:
        """Stay in the present state for ``dt`` s; returns charge used.

        ``current`` overrides the state's default draw (RUN current is
        task dependent).
        """
        i = self.machine.current_of(self.state) if current is None else current
        self.time_in_state[self.state] += dt
        charge = i * dt
        self.charge_in_state[self.state] += charge
        return charge

    def move_to(self, target: PowerState) -> Transition:
        """Transition to ``target``, accounting overheads; returns the edge."""
        t = self.machine.move_to(target)
        self.transition_charge += t.charge
        self.transition_time += t.delay
        if target is PowerState.SLEEP:
            self.n_sleeps += 1
        return t

    @property
    def total_charge(self) -> float:
        """Total load charge so far, states + transitions (A-s)."""
        return sum(self.charge_in_state.values()) + self.transition_charge

    @property
    def total_time(self) -> float:
        """Total wall time so far, states + transitions (s)."""
        return sum(self.time_in_state.values()) + self.transition_time

    def reset(self) -> None:
        """Clear counters and return to the initial state."""
        self.machine.reset()
        self.time_in_state = {s: 0.0 for s in PowerState}
        self.charge_in_state = {s: 0.0 for s in PowerState}
        self.transition_charge = 0.0
        self.transition_time = 0.0
        self.n_sleeps = 0
