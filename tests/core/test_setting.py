"""SlotProblem / SlotSolution / FCOutputPlan record tests."""

import pytest

from repro.core.setting import FCOutputPlan, PlanSegment, SlotProblem, SlotSolution
from repro.errors import ConfigurationError
from repro.fuelcell.efficiency import LinearSystemEfficiency


class TestSlotProblem:
    def test_motivational_demands(self):
        p = SlotProblem(t_idle=20, t_active=10, i_idle=0.2, i_active=1.2)
        assert p.idle_demand == pytest.approx(4.0)
        assert p.active_demand == pytest.approx(12.0)
        assert p.total_demand == pytest.approx(16.0)
        assert p.total_time == 30.0

    def test_no_sleep_has_no_overheads(self):
        p = SlotProblem(20, 10, 0.2, 1.2, sleeping=False, t_wu=1, t_pd=1,
                        i_wu=1.2, i_pd=1.2)
        assert p.t_active_eff == 10.0
        assert p.active_demand == pytest.approx(12.0)
        assert p.delta == 0

    def test_sleep_extends_active_and_demand(self):
        # Section 3.3.2: Ta_eff = Ta + tauWU + tauPD, demand gains the
        # transition charges.
        p = SlotProblem(20, 10, 0.2, 1.2, sleeping=True, t_wu=1, t_pd=1,
                        i_wu=1.2, i_pd=1.2)
        assert p.t_active_eff == 12.0
        assert p.active_demand == pytest.approx(12.0 + 2.4)
        assert p.delta == 1

    def test_rejects_bad_durations(self):
        with pytest.raises(ConfigurationError):
            SlotProblem(-1, 10, 0.2, 1.2)
        with pytest.raises(ConfigurationError):
            SlotProblem(20, 0, 0.2, 1.2)

    def test_rejects_storage_out_of_bounds(self):
        with pytest.raises(ConfigurationError):
            SlotProblem(20, 10, 0.2, 1.2, c_ini=10.0, c_max=5.0)
        with pytest.raises(ConfigurationError):
            SlotProblem(20, 10, 0.2, 1.2, c_end=10.0, c_max=5.0)

    def test_zero_idle_allowed(self):
        p = SlotProblem(0.0, 10, 0.2, 1.2)
        assert p.idle_demand == 0.0


class TestSlotSolution:
    def test_is_flat(self):
        flat = SlotSolution(0.5, 0.5, 0.4, 0.4, 10.0, 1.0, 0.0)
        split = SlotSolution(0.4, 0.6, 0.3, 0.5, 10.0, 1.0, 0.0)
        assert flat.is_flat and not split.is_flat


class TestFCOutputPlan:
    def test_fuel_matches_paper_setting_c(self):
        m = LinearSystemEfficiency()
        plan = FCOutputPlan()
        plan.append(20.0, 16 / 30, i_load=0.2, label="idle")
        plan.append(10.0, 16 / 30, i_load=1.2, label="active")
        assert plan.fuel(m) == pytest.approx(13.45, abs=0.01)

    def test_delivered_and_load_charge(self):
        plan = FCOutputPlan()
        plan.append(20.0, 16 / 30, i_load=0.2)
        plan.append(10.0, 16 / 30, i_load=1.2)
        assert plan.delivered_charge() == pytest.approx(16.0)
        assert plan.load_charge() == pytest.approx(16.0)

    def test_storage_trajectory(self):
        plan = FCOutputPlan()
        plan.append(20.0, 16 / 30, i_load=0.2)
        plan.append(10.0, 16 / 30, i_load=1.2)
        levels = plan.storage_trajectory(c_ini=0.0)
        # Storage swing: (0.533 - 0.2) * 20 = 6.67 A-s, back to 0.  (The
        # paper prints "charged to 10.67 A-s", which is the FC-delivered
        # idle charge IF*Ti, not the storage level -- see EXPERIMENTS.md.)
        assert levels[0] == pytest.approx(6.67, abs=0.01)
        assert levels[1] == pytest.approx(0.0, abs=1e-9)

    def test_series_shapes(self):
        plan = FCOutputPlan()
        plan.append(20.0, 0.5, i_load=0.2)
        plan.append(10.0, 0.5, i_load=1.2)
        times, i_f, i_load = plan.series()
        assert list(times) == [0.0, 20.0, 30.0]
        assert i_f == [0.5, 0.5]
        assert i_load == [0.2, 1.2]

    def test_duration_and_len(self):
        plan = FCOutputPlan()
        plan.extend([PlanSegment(5.0, 0.3), PlanSegment(2.0, 0.8)])
        assert plan.duration == 7.0
        assert len(plan) == 2

    def test_segment_validation(self):
        with pytest.raises(ConfigurationError):
            PlanSegment(-1.0, 0.5)
        with pytest.raises(ConfigurationError):
            PlanSegment(1.0, -0.5)
