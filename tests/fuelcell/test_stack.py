"""FC stack model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fuelcell.stack import FCStack


@pytest.fixture
def stack() -> FCStack:
    return FCStack.bcs_20w()


class TestBasics:
    def test_open_circuit_voltage(self, stack):
        assert stack.open_circuit_voltage == pytest.approx(18.2)

    def test_n_cells(self, stack):
        assert stack.n_cells == 20

    def test_power_capacity_near_20w(self, stack):
        assert stack.power_capacity == pytest.approx(20.0, abs=1.0)

    def test_max_power_point_cached(self, stack):
        first = stack.max_power_point
        assert stack.max_power_point is first


class TestEfficiency:
    def test_stack_efficiency_tracks_voltage(self, stack):
        # Efficiency = Vfc / zeta (the Ifc cancels, paper Section 2.3).
        assert stack.stack_efficiency(0.5) == pytest.approx(
            stack.voltage(0.5) / 37.5
        )

    def test_stack_efficiency_decreasing(self, stack):
        etas = [stack.stack_efficiency(i) for i in (0.1, 0.5, 1.0, 1.4)]
        assert etas == sorted(etas, reverse=True)

    def test_efficiency_rejects_bad_zeta(self, stack):
        with pytest.raises(ConfigurationError):
            stack.stack_efficiency(0.5, zeta=0.0)

    def test_low_current_efficiency_about_46_percent(self, stack):
        # With zeta = 37.5 the calibrated stack sits near 45 % at light load.
        assert stack.stack_efficiency(0.1) == pytest.approx(0.455, abs=0.02)


class TestPowerInverse:
    def test_current_for_power_matches_sweep(self, stack):
        i = stack.current_for_power(12.0)
        assert float(stack.power(i)) == pytest.approx(12.0, rel=1e-6)

    def test_sweep_is_consistent(self, stack):
        i, v, p = stack.sweep(n_points=64)
        assert np.allclose(p, v * i)
