"""Sliding-window regression predictor (paper ref [2], Srivastava et al.).

Srivastava's predictive shutdown fits the next idle period as a
(regression) function of recent history.  We implement the standard
formulation: ordinary least squares of ``T(k)`` against the previous
``order`` period lengths over a sliding window -- an AR(order) one-step
forecaster with ridge regularization for numerical safety.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import ConfigurationError
from .base import Predictor


class RegressionPredictor(Predictor):
    """AR(``order``) least-squares one-step forecaster.

    Parameters
    ----------
    order:
        Number of lagged periods used as features.
    window:
        Number of recent samples kept for the fit (must exceed
        ``order + 1`` for the fit to be determined).
    ridge:
        Tikhonov regularization strength (keeps the normal equations
        well-posed on constant histories).
    initial:
        Prediction issued before enough history accumulates.
    """

    def __init__(
        self,
        order: int = 2,
        window: int = 32,
        ridge: float = 1e-6,
        initial: float = 0.0,
    ) -> None:
        super().__init__()
        if order < 1:
            raise ConfigurationError("order must be >= 1")
        if window < order + 2:
            raise ConfigurationError("window must be at least order + 2")
        if ridge < 0:
            raise ConfigurationError("ridge must be non-negative")
        if initial < 0:
            raise ConfigurationError("initial estimate cannot be negative")
        self.order = order
        self.window = window
        self.ridge = ridge
        self.initial = initial
        self._history: deque[float] = deque(maxlen=window)

    @property
    def history(self) -> tuple[float, ...]:
        """The retained sample window (oldest first)."""
        return tuple(self._history)

    def _fit_and_forecast(self) -> float:
        h = np.asarray(self._history, dtype=float)
        p = self.order
        n = h.size - p
        if n < 2:
            # Not enough rows to fit: fall back to the window mean.
            return float(h.mean())
        # Rows: [1, T(k-1), ..., T(k-p)] -> T(k)
        x = np.empty((n, p + 1))
        x[:, 0] = 1.0
        for j in range(p):
            x[:, j + 1] = h[p - 1 - j : p - 1 - j + n]
        y = h[p:]
        gram = x.T @ x + self.ridge * np.eye(p + 1)
        coef = np.linalg.solve(gram, x.T @ y)
        features = np.concatenate(([1.0], h[-1 : -p - 1 : -1]))
        forecast = float(features @ coef)
        # An explosive AR fit (e.g. on near-geometric inputs) must not
        # commit a DPM policy to absurd horizons: clip the forecast to
        # twice the largest observed period.
        return float(np.clip(forecast, 0.0, 2.0 * h.max()))

    def predict(self) -> float:
        if len(self._history) <= self.order:
            value = self.initial if not self._history else float(
                np.mean(self._history)
            )
            return self._remember(value)
        return self._remember(self._fit_and_forecast())

    def _update(self, actual: float) -> None:
        self._history.append(actual)

    def reset(self) -> None:
        super().reset()
        self._history.clear()
