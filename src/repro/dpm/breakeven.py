"""Break-even analysis helpers (Benini et al., paper ref [4]).

The canonical ``Tbe`` computation lives in
:func:`repro.devices.states.break_even_time`; this module adds the
derived quantities DPM studies need: the charge saved by a sleep of a
given length, and the classic 2-competitive timeout result.
"""

from __future__ import annotations

from ..devices.device import DeviceParams
from ..devices.states import break_even_time
from ..errors import RangeError

__all__ = ["break_even_time", "sleep_saving", "worst_case_competitive_timeout"]


def sleep_saving(params: DeviceParams, t_idle: float) -> float:
    """Charge saved (A-s) by sleeping through an idle period vs STANDBY.

    Negative when the idle period is shorter than the break-even point
    (the overheads outweigh the low-power dwell).  Idle periods too
    short to host the transitions at all return the full overhead loss
    of an aborted attempt being impossible -- the policy simply cannot
    sleep, so the "saving" is 0.
    """
    if t_idle < 0:
        raise RangeError("idle length cannot be negative")
    overhead = params.t_pd + params.t_wu
    if t_idle < overhead:
        return 0.0
    standby_charge = params.i_sdb * t_idle
    sleep_charge = params.idle_charge(t_idle, sleep=True)
    return standby_charge - sleep_charge


def worst_case_competitive_timeout(params: DeviceParams) -> float:
    """The timeout value with the classic 2-competitive guarantee.

    Setting the timeout equal to the break-even time guarantees the
    policy never consumes more than twice the charge of the clairvoyant
    optimum on any single idle period (the ski-rental argument).
    """
    return params.break_even
