"""Task-slot load traces (paper Section 3.1).

The paper describes the load timing profile as "a sequence of task
slots; each task slot consists of an idle period (no task request)
followed by an active period (with task request)".  :class:`TaskSlot`
captures one such slot -- idle length ``Ti``, active length ``Ta`` and
the active-period load current ``Ild,a``.  The *idle* current is not a
trace property: it depends on the DPM decision (STANDBY vs SLEEP) and
comes from the device model.

:class:`LoadTrace` is an immutable sequence of slots with summary
statistics and CSV/JSON round-tripping.
"""

from __future__ import annotations

import csv
import io
import json
import statistics
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from ..errors import TraceError


@dataclass(frozen=True)
class TaskSlot:
    """One idle-then-active task slot.

    Attributes
    ----------
    t_idle:
        Idle-period length ``Ti`` (s).
    t_active:
        Active-period length ``Ta`` (s).
    i_active:
        Load current during the active period ``Ild,a`` (A).
    """

    t_idle: float
    t_active: float
    i_active: float

    def __post_init__(self) -> None:
        if self.t_idle < 0:
            raise TraceError(f"negative idle length: {self.t_idle}")
        if self.t_active <= 0:
            raise TraceError(f"active length must be positive: {self.t_active}")
        if self.i_active < 0:
            raise TraceError(f"negative active current: {self.i_active}")

    @property
    def length(self) -> float:
        """Total slot length ``Ti + Ta`` (s)."""
        return self.t_idle + self.t_active

    @property
    def active_charge(self) -> float:
        """Active-period load charge ``Ild,a * Ta`` (A-s)."""
        return self.i_active * self.t_active


class LoadTrace(Sequence[TaskSlot]):
    """An immutable sequence of task slots with summary statistics."""

    def __init__(self, slots: Iterable[TaskSlot], name: str = "trace") -> None:
        self._slots = tuple(slots)
        if not self._slots:
            raise TraceError("a trace needs at least one slot")
        self.name = name

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[TaskSlot]:
        return iter(self._slots)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return LoadTrace(self._slots[index], name=f"{self.name}[{index}]")
        return self._slots[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LoadTrace) and self._slots == other._slots

    def __hash__(self) -> int:
        return hash(self._slots)

    def __repr__(self) -> str:
        return (
            f"LoadTrace({self.name!r}, {len(self)} slots, "
            f"{self.duration:.1f} s)"
        )

    # -- statistics ---------------------------------------------------------

    @property
    def duration(self) -> float:
        """Total trace length (s)."""
        return sum(s.length for s in self._slots)

    @property
    def idle_time(self) -> float:
        """Total idle time (s)."""
        return sum(s.t_idle for s in self._slots)

    @property
    def active_time(self) -> float:
        """Total active time (s)."""
        return sum(s.t_active for s in self._slots)

    @property
    def duty_cycle(self) -> float:
        """Fraction of time spent active."""
        return self.active_time / self.duration

    @property
    def peak_current(self) -> float:
        """Largest active-period current in the trace (A)."""
        return max(s.i_active for s in self._slots)

    def mean_idle(self) -> float:
        """Mean idle-period length (s)."""
        return statistics.fmean(s.t_idle for s in self._slots)

    def mean_active(self) -> float:
        """Mean active-period length (s)."""
        return statistics.fmean(s.t_active for s in self._slots)

    def mean_active_current(self) -> float:
        """Time-weighted mean active current (A)."""
        return sum(s.active_charge for s in self._slots) / self.active_time

    def average_current(self, i_idle: float) -> float:
        """Whole-trace average load current given a flat idle current (A).

        Useful for sizing: the paper notes the FC can be sized for the
        *average* load once a hybrid buffer absorbs the peaks.
        """
        if i_idle < 0:
            raise TraceError("idle current cannot be negative")
        charge = sum(s.active_charge for s in self._slots) + i_idle * self.idle_time
        return charge / self.duration

    # -- manipulation ----------------------------------------------------------

    def truncate(self, max_duration: float) -> "LoadTrace":
        """Prefix of the trace with total length <= ``max_duration``.

        Keeps whole slots only; raises if not even the first slot fits.
        """
        kept: list[TaskSlot] = []
        elapsed = 0.0
        for s in self._slots:
            if elapsed + s.length > max_duration:
                break
            kept.append(s)
            elapsed += s.length
        if not kept:
            raise TraceError(
                f"no whole slot fits in {max_duration} s "
                f"(first slot is {self._slots[0].length} s)"
            )
        return LoadTrace(kept, name=f"{self.name}|<={max_duration:g}s")

    def scaled(self, idle: float = 1.0, active: float = 1.0, current: float = 1.0):
        """Return a copy with idle/active lengths and currents scaled."""
        if min(idle, active, current) <= 0:
            raise TraceError("scale factors must be positive")
        return LoadTrace(
            (
                TaskSlot(s.t_idle * idle, s.t_active * active, s.i_active * current)
                for s in self._slots
            ),
            name=f"{self.name}|scaled",
        )

    # -- serialization ----------------------------------------------------------

    def to_csv(self) -> str:
        """Serialize as CSV with a header row."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["t_idle_s", "t_active_s", "i_active_a"])
        for s in self._slots:
            writer.writerow([repr(s.t_idle), repr(s.t_active), repr(s.i_active)])
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str, name: str = "csv-trace") -> "LoadTrace":
        """Parse a trace written by :meth:`to_csv`."""
        reader = csv.reader(io.StringIO(text))
        rows = [row for row in reader if row]
        if not rows or rows[0][:3] != ["t_idle_s", "t_active_s", "i_active_a"]:
            raise TraceError("missing or malformed CSV header")
        slots = []
        for lineno, row in enumerate(rows[1:], start=2):
            try:
                slots.append(TaskSlot(float(row[0]), float(row[1]), float(row[2])))
            except (IndexError, ValueError) as exc:
                raise TraceError(f"bad CSV row {lineno}: {row!r}") from exc
        return cls(slots, name=name)

    def to_json(self) -> str:
        """Serialize as a JSON document."""
        return json.dumps(
            {
                "name": self.name,
                "slots": [
                    {
                        "t_idle": s.t_idle,
                        "t_active": s.t_active,
                        "i_active": s.i_active,
                    }
                    for s in self._slots
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "LoadTrace":
        """Parse a trace written by :meth:`to_json`."""
        try:
            doc = json.loads(text)
            slots = [
                TaskSlot(d["t_idle"], d["t_active"], d["i_active"])
                for d in doc["slots"]
            ]
            return cls(slots, name=doc.get("name", "json-trace"))
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise TraceError(f"malformed trace JSON: {exc}") from exc
