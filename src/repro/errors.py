"""Exception hierarchy for the repro library.

Every exception raised by this package derives from :class:`ReproError`,
so callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A model or policy was constructed with inconsistent parameters."""


class RangeError(ReproError, ValueError):
    """A physical quantity is outside its valid domain.

    Example: requesting stack voltage at a current beyond the maximum
    power point, or an FC output outside the load-following range when
    clamping is disabled.
    """


class InfeasibleError(ReproError):
    """The optimization problem has no feasible solution.

    Raised, e.g., when the load demands more charge over a slot than the
    FC at its maximum load-following output plus a full storage element
    can supply.
    """


class StorageError(ReproError):
    """Charge-storage bookkeeping violated (overdraw without permission)."""


class TraceError(ReproError):
    """A load trace is malformed (negative durations, bad ordering...)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class DepletedError(SimulationError):
    """The fuel tank (or storage in stand-alone mode) ran out mid-run."""
