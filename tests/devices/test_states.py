"""Power-state machine and break-even-time tests."""

import pytest

from repro.devices.states import (
    PowerState,
    PowerStateMachine,
    Transition,
    break_even_time,
)
from repro.errors import ConfigurationError, RangeError


def make_machine() -> PowerStateMachine:
    return PowerStateMachine(
        state_currents={
            PowerState.RUN: 1.22,
            PowerState.STANDBY: 0.403,
            PowerState.SLEEP: 0.2,
        },
        transitions=[
            Transition(PowerState.STANDBY, PowerState.RUN, 1.5, 1.22),
            Transition(PowerState.RUN, PowerState.STANDBY, 0.5, 1.22),
            Transition(PowerState.STANDBY, PowerState.SLEEP, 0.5, 0.4),
            Transition(PowerState.SLEEP, PowerState.STANDBY, 0.5, 0.4),
        ],
    )


class TestTransition:
    def test_charge(self):
        t = Transition(PowerState.STANDBY, PowerState.SLEEP, 0.5, 0.4)
        assert t.charge == pytest.approx(0.2)

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError):
            Transition(PowerState.RUN, PowerState.RUN, 0.5, 0.4)

    def test_rejects_negative_overheads(self):
        with pytest.raises(ConfigurationError):
            Transition(PowerState.RUN, PowerState.STANDBY, -0.5, 0.4)


class TestMachine:
    def test_initial_state(self):
        assert make_machine().state is PowerState.STANDBY

    def test_move_and_reset(self):
        m = make_machine()
        t = m.move_to(PowerState.SLEEP)
        assert m.state is PowerState.SLEEP
        assert t.delay == 0.5
        m.reset()
        assert m.state is PowerState.STANDBY

    def test_illegal_transition_rejected(self):
        m = make_machine()
        m.move_to(PowerState.SLEEP)
        with pytest.raises(RangeError):
            m.move_to(PowerState.RUN)  # no SLEEP -> RUN edge

    def test_can_transition(self):
        m = make_machine()
        assert m.can_transition(PowerState.STANDBY, PowerState.RUN)
        assert not m.can_transition(PowerState.SLEEP, PowerState.RUN)

    def test_current_of(self):
        assert make_machine().current_of(PowerState.SLEEP) == 0.2

    def test_duplicate_transition_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerStateMachine(
                state_currents={PowerState.RUN: 1.0, PowerState.STANDBY: 0.4},
                transitions=[
                    Transition(PowerState.STANDBY, PowerState.RUN, 1.0, 1.0),
                    Transition(PowerState.STANDBY, PowerState.RUN, 2.0, 1.0),
                ],
            )

    def test_unknown_state_in_transition_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerStateMachine(
                state_currents={PowerState.STANDBY: 0.4},
                transitions=[
                    Transition(PowerState.STANDBY, PowerState.SLEEP, 1.0, 0.2)
                ],
            )


class TestBreakEven:
    def test_latency_floor(self):
        # Paper Exp. 1: transition current equals standby current and the
        # transitions draw more than sleep saves -> Tbe = tau_PD + tau_WU.
        tbe = break_even_time(
            t_pd=0.5, t_wu=0.5, i_pd=0.403, i_wu=0.403, i_high=0.403, i_low=0.2
        )
        assert tbe == pytest.approx(1.0)

    def test_energy_floor_dominates_with_heavy_overheads(self):
        # Paper Exp. 2: 1 s at 1.2 A each way, standby 0.403 vs sleep 0.2:
        # overhead charge = 2*(1.2-0.2) = 2.0; saving rate 0.203 A ->
        # ~9.85 s, which the paper rounds to Tbe = 10 s.
        tbe = break_even_time(
            t_pd=1.0, t_wu=1.0, i_pd=1.2, i_wu=1.2, i_high=0.403, i_low=0.2
        )
        assert tbe == pytest.approx(10.0, abs=0.2)

    def test_zero_overhead(self):
        assert break_even_time(0, 0, 0, 0, 1.0, 0.1) == 0.0

    def test_rejects_inverted_currents(self):
        with pytest.raises(ConfigurationError):
            break_even_time(1, 1, 1, 1, i_high=0.1, i_low=0.4)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ConfigurationError):
            break_even_time(-1, 1, 1, 1, 0.4, 0.2)
