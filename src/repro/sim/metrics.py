"""Run metrics and policy comparisons (the paper's Tables 2/3 arithmetic).

The paper reports *normalized fuel consumption* (policy fuel over
Conv-DPM fuel) and derives lifetime extension as the inverse ratio:
"FC-DPM has a lifetime that is higher than ASAP-DPM by
40.8 % / 30.8 % = 1.32" (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RangeError


@dataclass(frozen=True)
class RunMetrics:
    """Summary numbers of one simulated run."""

    name: str
    #: Total fuel (stack A-s).
    fuel: float
    #: Total load charge served (A-s).
    load_charge: float
    #: Wall-clock length of the run (s).
    duration: float
    #: Charge wasted through the bleeder (A-s).
    bled: float = 0.0
    #: Unserved load charge (A-s) -- should be ~0 for sane policies.
    deficit: float = 0.0

    @property
    def average_fuel_rate(self) -> float:
        """Mean stack current (A)."""
        if self.duration == 0:
            return 0.0
        return self.fuel / self.duration

    @property
    def average_load(self) -> float:
        """Mean load current (A)."""
        if self.duration == 0:
            return 0.0
        return self.load_charge / self.duration

    def lifetime(self, tank_capacity: float) -> float:
        """Runtime (s) a tank of ``tank_capacity`` stack-A-s sustains.

        Lifetime is inversely proportional to the average fuel rate for
        a stationary workload -- the paper's equivalence between fuel
        saving and lifetime extension.
        """
        if tank_capacity <= 0:
            raise RangeError("tank capacity must be positive")
        if self.fuel == 0:
            return float("inf")
        return tank_capacity * self.duration / self.fuel


def normalized_fuel(metrics: RunMetrics, reference: RunMetrics) -> float:
    """Fuel of ``metrics`` as a fraction of ``reference`` (Table 2/3 cells)."""
    if reference.fuel <= 0:
        raise RangeError("reference fuel must be positive")
    return metrics.fuel / reference.fuel


def fuel_saving(metrics: RunMetrics, baseline: RunMetrics) -> float:
    """Fractional fuel saved relative to ``baseline`` (e.g. 0.244 = 24.4 %)."""
    if baseline.fuel <= 0:
        raise RangeError("baseline fuel must be positive")
    return 1.0 - metrics.fuel / baseline.fuel


def lifetime_extension(metrics: RunMetrics, baseline: RunMetrics) -> float:
    """Lifetime ratio vs ``baseline`` (the paper's 1.32x headline).

    Equal-duration runs of the same workload consume fuel at different
    rates; with a fixed tank the lifetime ratio is the inverse fuel
    ratio.
    """
    if metrics.fuel <= 0:
        raise RangeError("fuel must be positive to compare lifetimes")
    return baseline.fuel / metrics.fuel


def compare(runs: list[RunMetrics], reference_name: str = "conv-dpm") -> dict[str, float]:
    """Normalized-fuel table keyed by run name (reference = 1.0)."""
    by_name = {r.name: r for r in runs}
    if reference_name not in by_name:
        raise RangeError(f"no run named {reference_name!r} among {sorted(by_name)}")
    ref = by_name[reference_name]
    return {r.name: normalized_fuel(r, ref) for r in runs}
