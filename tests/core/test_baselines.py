"""Conv-DPM / ASAP-DPM source-controller tests."""

import pytest

from repro.core.baselines import (
    ASAPDPMController,
    ConvDPMController,
    SegmentContext,
    StaticController,
)
from repro.errors import ConfigurationError
from repro.fuelcell.efficiency import LinearSystemEfficiency


@pytest.fixture
def model() -> LinearSystemEfficiency:
    return LinearSystemEfficiency()


def ctx(i_load=0.2, charge=3.0, capacity=6.0, phase="idle", kind="standby"):
    return SegmentContext(
        slot_index=0,
        phase=phase,
        kind=kind,
        duration=10.0,
        i_load=i_load,
        storage_charge=charge,
        storage_capacity=capacity,
        phase_duration=10.0,
        phase_demand=i_load * 10.0,
    )


class TestConvDPM:
    def test_always_max_output(self, model):
        c = ConvDPMController(model)
        assert c.output(ctx(i_load=0.2)) == 1.2
        assert c.output(ctx(i_load=1.2, phase="active", kind="run")) == 1.2


class TestASAPDPM:
    def test_follows_load_in_range(self, model):
        c = ASAPDPMController(model)
        assert c.output(ctx(i_load=0.4)) == pytest.approx(0.4)

    def test_clamps_load_to_range(self, model):
        c = ASAPDPMController(model)
        assert c.output(ctx(i_load=1.3)) == 1.2
        assert c.output(ctx(i_load=0.05)) == 0.1

    def test_recharge_mode_below_half(self, model):
        c = ASAPDPMController(model)
        assert c.output(ctx(i_load=0.2, charge=2.0)) == 1.2  # < half of 6
        assert c.recharging

    def test_recharge_mode_persists_until_full(self, model):
        # The paper recharges "to full capacity as soon as possible".
        c = ASAPDPMController(model)
        c.output(ctx(i_load=0.2, charge=2.0))
        assert c.output(ctx(i_load=0.2, charge=4.5)) == 1.2
        assert c.output(ctx(i_load=0.2, charge=6.0)) == pytest.approx(0.2)
        assert not c.recharging

    def test_threshold_configurable(self, model):
        c = ASAPDPMController(model, recharge_threshold=0.25)
        c.output(ctx(i_load=0.2, charge=2.0))  # soc 0.33 > 0.25
        assert not c.recharging

    def test_rejects_bad_thresholds(self, model):
        with pytest.raises(ConfigurationError):
            ASAPDPMController(model, recharge_threshold=0.9, full_level=0.5)

    def test_reset_clears_recharge(self, model):
        c = ASAPDPMController(model)
        c.output(ctx(charge=1.0))
        c.reset()
        assert not c.recharging


class TestStatic:
    def test_holds_value(self, model):
        c = StaticController(model, 0.7)
        assert c.output(ctx()) == 0.7
        assert c.output(ctx(phase="active", kind="run")) == 0.7

    def test_rejects_out_of_range(self, model):
        with pytest.raises(ConfigurationError):
            StaticController(model, 1.5)
