"""Charge-storage model tests."""

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.power.storage import IdealStorage, LiIonBattery, SuperCapacitor


class TestSuperCapacitor:
    def test_charge_and_discharge_roundtrip(self):
        sc = SuperCapacitor(capacity=6.0)
        sc.step(+0.5, 4.0)  # +2 A-s
        assert sc.charge == pytest.approx(2.0)
        sc.step(-0.5, 4.0)
        assert sc.charge == pytest.approx(0.0)

    def test_soc(self):
        sc = SuperCapacitor(capacity=6.0, initial_charge=3.0)
        assert sc.soc == pytest.approx(0.5)
        assert sc.headroom == pytest.approx(3.0)

    def test_overflow_goes_to_bleeder(self):
        sc = SuperCapacitor(capacity=6.0, initial_charge=5.0)
        absorbed = sc.step(+1.0, 3.0)  # +3 requested, +1 fits
        assert absorbed == pytest.approx(1.0)
        assert sc.charge == pytest.approx(6.0)
        assert sc.bled_charge == pytest.approx(2.0)

    def test_overflow_strict_raises(self):
        sc = SuperCapacitor(capacity=6.0, initial_charge=5.0)
        with pytest.raises(StorageError):
            sc.step(+1.0, 3.0, strict=True)

    def test_underflow_records_deficit(self):
        sc = SuperCapacitor(capacity=6.0, initial_charge=1.0)
        delivered = sc.step(-1.0, 3.0)  # -3 requested, -1 available
        assert delivered == pytest.approx(-1.0)
        assert sc.charge == 0.0
        assert sc.deficit_charge == pytest.approx(2.0)

    def test_underflow_strict_raises(self):
        sc = SuperCapacitor(capacity=6.0, initial_charge=1.0)
        with pytest.raises(StorageError):
            sc.step(-1.0, 3.0, strict=True)

    def test_coulombic_efficiency_loses_on_charge_only(self):
        sc = SuperCapacitor(capacity=10.0, coulombic_efficiency=0.9)
        sc.step(+1.0, 2.0)
        assert sc.charge == pytest.approx(1.8)
        sc.step(-0.9, 2.0)
        assert sc.charge == pytest.approx(0.0)

    def test_leakage(self):
        sc = SuperCapacitor(capacity=10.0, initial_charge=5.0, leakage_current=0.01)
        sc.step(0.0, 100.0)
        assert sc.charge == pytest.approx(4.0)

    def test_reset(self):
        sc = SuperCapacitor(capacity=6.0)
        sc.step(+10.0, 10.0)
        sc.step(-10.0, 10.0)
        sc.reset(3.0)
        assert sc.charge == 3.0
        assert sc.bled_charge == 0.0
        assert sc.deficit_charge == 0.0

    def test_reset_out_of_range_rejected(self):
        with pytest.raises(StorageError):
            SuperCapacitor(capacity=6.0).reset(7.0)

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            SuperCapacitor(capacity=0.0)
        with pytest.raises(ConfigurationError):
            SuperCapacitor(capacity=6.0, initial_charge=7.0)
        with pytest.raises(ConfigurationError):
            SuperCapacitor(capacity=6.0, coulombic_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            SuperCapacitor(capacity=6.0, leakage_current=-1.0)

    def test_rejects_negative_dt(self):
        with pytest.raises(StorageError):
            SuperCapacitor(capacity=6.0).step(1.0, -1.0)


class TestIdealStorage:
    def test_effectively_unbounded(self):
        s = IdealStorage()
        s.step(+100.0, 1000.0)
        assert s.charge == pytest.approx(1e5)
        assert s.bled_charge == 0.0


class TestLiIonBattery:
    def test_nominal_rate_no_penalty(self):
        b = LiIonBattery(capacity=100.0, initial_charge=50.0, rated_current=0.5)
        b.step(-0.5, 10.0)
        assert b.charge == pytest.approx(45.0)

    def test_rate_capacity_penalty_above_rated(self):
        b = LiIonBattery(
            capacity=100.0, initial_charge=50.0, rated_current=0.5, peukert=1.2
        )
        b.step(-2.0, 10.0)  # 4x rated -> factor 4**0.2 ~ 1.32
        drawn = 50.0 - b.charge
        assert drawn == pytest.approx(20.0 * 4**0.2, rel=1e-6)
        assert drawn > 20.0

    def test_recovery_returns_charge_during_rest(self):
        b = LiIonBattery(
            capacity=100.0,
            initial_charge=50.0,
            rated_current=0.5,
            peukert=1.2,
            recovery_fraction=1.0,
            recovery_tau=10.0,
        )
        b.step(-2.0, 10.0)
        low = b.charge
        assert b.recoverable_charge > 0
        b.step(0.0, 1000.0)  # long rest: full recovery
        assert b.charge > low
        assert b.recoverable_charge == pytest.approx(0.0, abs=1e-6)

    def test_fuel_cells_vs_battery_contrast(self):
        # The recovery effect exists for the battery (paper: FCs have none).
        b = LiIonBattery(capacity=100.0, initial_charge=50.0, peukert=1.3,
                         rated_current=0.2, recovery_fraction=0.8)
        b.step(-1.0, 5.0)
        assert b.recoverable_charge > 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LiIonBattery(capacity=10.0, rated_current=0.0)
        with pytest.raises(ConfigurationError):
            LiIonBattery(capacity=10.0, peukert=0.9)
        with pytest.raises(ConfigurationError):
            LiIonBattery(capacity=10.0, recovery_fraction=1.5)
        with pytest.raises(ConfigurationError):
            LiIonBattery(capacity=10.0, recovery_tau=0.0)
