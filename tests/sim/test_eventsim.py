"""Cross-validation: event-driven simulator vs slot-level simulator.

The two simulators share no integration code; agreeing fuel totals on
identical traces is the repository's strongest internal correctness
check (see eventsim module docstring).
"""

import pytest

from repro.core.manager import PowerManager
from repro.sim.eventsim import EventDrivenSimulator
from repro.sim.slotsim import SlotSimulator
from repro.workload.mpeg import generate_mpeg_trace
from repro.workload.synthetic import experiment2_trace


def fresh_managers(params):
    kwargs = {"storage_capacity": 6.0, "storage_initial": 3.0}
    return {
        "conv-dpm": lambda: PowerManager.conv_dpm(params, **kwargs),
        "asap-dpm": lambda: PowerManager.asap_dpm(params, **kwargs),
        "fc-dpm": lambda: PowerManager.fc_dpm(params, **kwargs),
    }


class TestCrossValidation:
    @pytest.mark.parametrize("which", ["conv-dpm", "asap-dpm", "fc-dpm"])
    def test_simulators_agree_small_trace(self, camcorder_params, small_trace, which):
        make = fresh_managers(camcorder_params)[which]
        slot = SlotSimulator(make()).run(small_trace)
        event = EventDrivenSimulator(make()).run(small_trace)
        assert event.fuel == pytest.approx(slot.fuel, rel=1e-9)
        assert event.load_charge == pytest.approx(slot.load_charge, rel=1e-9)
        assert event.n_sleeps == slot.n_sleeps
        assert event.duration == pytest.approx(slot.duration, rel=1e-9)

    @pytest.mark.parametrize("which", ["asap-dpm", "fc-dpm"])
    def test_simulators_agree_mpeg_trace(self, camcorder_params, which):
        trace = generate_mpeg_trace(duration_s=300.0, seed=11)
        make = fresh_managers(camcorder_params)[which]
        slot = SlotSimulator(make()).run(trace)
        event = EventDrivenSimulator(make()).run(trace)
        assert event.fuel == pytest.approx(slot.fuel, rel=1e-9)
        assert event.bled == pytest.approx(slot.bled, abs=1e-6)
        assert event.deficit == pytest.approx(slot.deficit, abs=1e-6)

    def test_simulators_agree_exp2(self, exp2_params):
        trace = experiment2_trace(seed=5, n_slots=30)
        make = fresh_managers(exp2_params)["fc-dpm"]
        slot = SlotSimulator(make()).run(trace)
        event = EventDrivenSimulator(make()).run(trace)
        assert event.fuel == pytest.approx(slot.fuel, rel=1e-9)
        assert event.n_aborted_sleeps == slot.n_aborted_sleeps

    def test_engine_time_advances_monotonically(self, camcorder_params, small_trace):
        make = fresh_managers(camcorder_params)["conv-dpm"]
        result = EventDrivenSimulator(make()).run(small_trace)
        assert result.duration > small_trace.duration

    def test_device_ledger_matches_source_load(self, camcorder_params):
        """A third set of books: the DPMDevice state-machine ledger must
        equal the hybrid source's served load charge exactly."""
        trace = generate_mpeg_trace(duration_s=300.0, seed=11)
        make = fresh_managers(camcorder_params)["fc-dpm"]
        sim = EventDrivenSimulator(make())
        result = sim.run(trace)
        device = sim.last_device
        assert device is not None
        assert device.total_charge == pytest.approx(result.load_charge,
                                                    rel=1e-9)
        assert device.total_time == pytest.approx(result.duration, rel=1e-9)
        assert device.n_sleeps == result.n_sleeps
