"""Declarative experiment scenarios: name -> full configuration.

A :class:`Scenario` is a frozen, serializable description of one
experimental setup -- workload, device, DPM+FC policy, power source and
the constants that tie them together.  It replaces the ad-hoc
"keyword soup" that analysis code used to thread through
:class:`~repro.core.manager.PowerManager` construction: every layer
(CLI, sweeps, Monte-Carlo, result cache) can now speak one vocabulary,
and a cache key can name the configuration instead of guessing it from
call-site arguments.

The builders delegate to the exact factory functions the table
reproductions use (``PowerManager.conv_dpm`` & co.,
``generate_mpeg_trace``, ``experiment2_trace``), so a scenario-built run
is bit-identical to the corresponding hand-built one -- asserted by the
golden tests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from ..config import Experiment1Constants, Experiment2Constants, FCSystemConstants
from ..core.manager import PowerManager
from ..devices.camcorder import camcorder_device_params, randomized_device_params
from ..devices.device import DeviceParams
from ..errors import ConfigurationError
from ..fuelcell.efficiency import LinearSystemEfficiency
from ..fuelcell.fuel import FuelTank, GibbsFuelModel
from ..fuelcell.system import FCSystem
from ..power.battery_only import BatteryOnlySource
from ..power.multistack import EfficiencyProportional, EqualShare, MultiStackHybrid
from ..power.storage import ChargeStorage, LiIonBattery, SuperCapacitor
from ..workload.mpeg import generate_mpeg_trace
from ..workload.synthetic import (
    experiment2_slot_arrays,
    experiment2_trace,
    fleet_slot_arrays,
    fleet_trace,
)
from ..workload.trace import LoadTrace, TaskSlot

_WORKLOAD_KINDS = ("mpeg", "experiment2", "fleet")
_DEVICE_KINDS = ("camcorder", "randomized")
_POLICY_KINDS = ("conv-dpm", "asap-dpm", "fc-dpm")
_SOURCE_KINDS = ("hybrid", "multi-stack", "battery")
_STORAGE_KINDS = ("supercap", "liion")
_SHARING_KINDS = ("equal", "efficiency")


def _check(value: str, allowed: tuple[str, ...], what: str) -> None:
    if value not in allowed:
        raise ConfigurationError(f"unknown {what} {value!r}; expected one of {allowed}")


@dataclass(frozen=True)
class WorkloadSpec:
    """Which trace generator feeds the run."""

    #: 'mpeg' (Experiment 1), 'experiment2' (randomized synthetic) or
    #: 'fleet' (experiment2 with per-device seed-offset jitter).
    kind: str = "mpeg"
    #: Trace length override (s) for the MPEG workload; None = paper's 28 min.
    duration_s: float | None = None
    #: Slot-count override for the experiment2/fleet workloads; None = constants'.
    n_slots: int | None = None
    #: Per-device workload heterogeneity (fleet only): every range bound
    #: scales by a deterministic per-seed factor in ``[1-jitter, 1+jitter]``.
    jitter: float = 0.25

    def __post_init__(self) -> None:
        _check(self.kind, _WORKLOAD_KINDS, "workload kind")
        if not 0 <= self.jitter < 1:
            raise ConfigurationError("workload jitter must be in [0, 1)")


@dataclass(frozen=True)
class DeviceSpec:
    """Which device parameter set the DPM policy manages."""

    #: 'camcorder' (Experiment 1) or 'randomized' (Experiment 2).
    kind: str = "camcorder"
    #: SLEEP-transition current overrides (A); None = the kind's default.
    i_pd: float | None = None
    i_wu: float | None = None

    def __post_init__(self) -> None:
        _check(self.kind, _DEVICE_KINDS, "device kind")


@dataclass(frozen=True)
class PolicySpec:
    """Joint DPM + FC-output policy configuration."""

    #: 'conv-dpm', 'asap-dpm' or 'fc-dpm'.
    kind: str = "fc-dpm"
    #: Idle-period exponential-average factor (the paper's ``rho``).
    rho: float = 0.5
    #: Active-current exponential-average factor (FC-DPM only).
    sigma: float = 0.5
    #: Constant future-active-current estimate (A); None = adaptive.
    active_current_estimate: float | None = None
    #: ASAP-DPM recharge threshold (fraction of storage capacity).
    recharge_threshold: float = 0.5

    def __post_init__(self) -> None:
        _check(self.kind, _POLICY_KINDS, "policy kind")


@dataclass(frozen=True)
class SourceSpec:
    """Which power-source plant serves the load."""

    #: 'hybrid' (paper), 'multi-stack' or 'battery'.
    kind: str = "hybrid"
    #: 'supercap' or 'liion' charge storage.
    storage_kind: str = "supercap"
    #: Storage capacity / initial charge (A-s).
    storage_capacity: float = 6.0
    storage_initial: float = 0.0
    #: Number of ganged FC systems (multi-stack only).
    n_stacks: int = 2
    #: Load-sharing rule for multi-stack: 'equal' or 'efficiency'.
    sharing: str = "equal"

    def __post_init__(self) -> None:
        _check(self.kind, _SOURCE_KINDS, "source kind")
        _check(self.storage_kind, _STORAGE_KINDS, "storage kind")
        _check(self.sharing, _SHARING_KINDS, "sharing strategy")
        if self.kind == "multi-stack" and self.n_stacks < 1:
            raise ConfigurationError("multi-stack source needs n_stacks >= 1")

    def build_storage(self) -> ChargeStorage:
        """Instantiate the configured charge-storage element."""
        if self.storage_kind == "liion":
            return LiIonBattery(
                capacity=self.storage_capacity, initial_charge=self.storage_initial
            )
        return SuperCapacitor(
            capacity=self.storage_capacity, initial_charge=self.storage_initial
        )


@dataclass(frozen=True)
class Scenario:
    """A named, fully-specified experimental configuration.

    ``build_trace`` / ``build_device`` / ``build_manager`` turn the
    declaration into live objects; ``to_dict`` / ``from_dict`` round-trip
    it through plain JSON-able data (used by the result cache to key
    entries on the *configuration*, not the call site).
    """

    name: str
    description: str = ""
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    device: DeviceSpec = field(default_factory=DeviceSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    source: SourceSpec = field(default_factory=SourceSpec)
    #: Default RNG seed (the paper's publication year, as everywhere).
    seed: int = 2007

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form (stable keys; JSON-serializable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            workload=WorkloadSpec(**data.get("workload", {})),
            device=DeviceSpec(**data.get("device", {})),
            policy=PolicySpec(**data.get("policy", {})),
            source=SourceSpec(**data.get("source", {})),
            seed=data.get("seed", 2007),
        )

    # -- builders ----------------------------------------------------------

    def build_trace(self, seed: int | None = None) -> LoadTrace:
        """Generate the workload trace (``seed`` overrides the default)."""
        seed = self.seed if seed is None else seed
        if self.workload.kind == "mpeg":
            c = Experiment1Constants()
            duration = (
                c.duration_s
                if self.workload.duration_s is None
                else self.workload.duration_s
            )
            return generate_mpeg_trace(duration_s=duration, seed=seed)
        e = Experiment2Constants()
        if self.workload.kind == "fleet":
            return fleet_trace(
                constants=e,
                seed=seed,
                n_slots=self.workload.n_slots,
                jitter=self.workload.jitter,
            )
        return experiment2_trace(constants=e, seed=seed, n_slots=self.workload.n_slots)

    def build_slot_arrays(self, seeds):
        """Batched slot synthesis: ``(t_idle, t_active, i_active)`` arrays.

        One ``(len(seeds), n_slots)`` row per seed, bit-identical to the
        slot values of ``build_trace(seed)`` -- the whole batch in one
        RNG pass per seed plus vectorized transforms (see
        :func:`~repro.workload.synthetic.uniform_slot_arrays`).  Returns
        ``None`` for workloads without an array builder (mpeg's frame
        loop is stateful); callers fall back to per-seed
        :meth:`build_trace`.  The stacked batch kernel consumes these
        arrays directly, skipping ``TaskSlot`` construction entirely.
        """
        w = self.workload
        if w.kind == "experiment2":
            return experiment2_slot_arrays(seeds, n_slots=w.n_slots)
        if w.kind == "fleet":
            return fleet_slot_arrays(seeds, n_slots=w.n_slots, jitter=w.jitter)
        return None

    def build_traces(self, seeds) -> dict[int, LoadTrace]:
        """Generate many seeds' workload traces in one batched pass.

        ``{seed: LoadTrace}``, each trace bit-identical to
        ``build_trace(seed)``.  Workloads with an array builder
        synthesize every seed's values first (the dominant per-seed cost
        of a batch sweep) and only then wrap them in slots; the rest
        fall back to per-seed generation.
        """
        seed_list = [int(s) for s in seeds]
        arrays = self.build_slot_arrays(seed_list)
        if arrays is None:
            return {s: self.build_trace(s) for s in seed_list}
        t_idle, t_active, i_active = arrays
        name = "fleet" if self.workload.kind == "fleet" else "experiment2"
        traces: dict[int, LoadTrace] = {}
        for r, seed in enumerate(seed_list):
            slots = [
                TaskSlot(t_idle=ti, t_active=ta, i_active=ia)
                for ti, ta, ia in zip(
                    t_idle[r].tolist(), t_active[r].tolist(), i_active[r].tolist()
                )
            ]
            traces[seed] = LoadTrace(slots, name=name)
        return traces

    def build_device(self) -> DeviceParams:
        """Instantiate the device parameter set."""
        if self.device.kind == "camcorder":
            c = Experiment1Constants()
            return camcorder_device_params(
                i_pd=c.i_pd if self.device.i_pd is None else self.device.i_pd,
                i_wu=c.i_wu if self.device.i_wu is None else self.device.i_wu,
            )
        e = Experiment2Constants()
        if self.device.i_pd is not None:
            e = replace(e, i_pd=self.device.i_pd)
        if self.device.i_wu is not None:
            e = replace(e, i_wu=self.device.i_wu)
        return randomized_device_params(e)

    def build_manager(self) -> PowerManager:
        """Assemble the full :class:`~repro.core.manager.PowerManager`.

        Delegates to the ``PowerManager`` factory for the policy+
        controller wiring (so scenario-built hybrids are bit-identical
        to hand-built ones), then swaps in the alternative plant when
        the source spec asks for one.
        """
        dev = self.build_device()
        p, s = self.policy, self.source
        # A supercap hybrid goes through the factory's own storage
        # construction (the paper-faithful, bit-identical path); any
        # other storage element is built here and handed over.
        storage = None if s.storage_kind == "supercap" else s.build_storage()
        if p.kind == "conv-dpm":
            mgr = PowerManager.conv_dpm(
                dev,
                storage=storage,
                storage_capacity=s.storage_capacity,
                storage_initial=s.storage_initial,
                rho=p.rho,
            )
        elif p.kind == "asap-dpm":
            mgr = PowerManager.asap_dpm(
                dev,
                storage=storage,
                storage_capacity=s.storage_capacity,
                storage_initial=s.storage_initial,
                rho=p.rho,
                recharge_threshold=p.recharge_threshold,
            )
        else:
            mgr = PowerManager.fc_dpm(
                dev,
                storage=storage,
                storage_capacity=s.storage_capacity,
                storage_initial=s.storage_initial,
                rho=p.rho,
                sigma=p.sigma,
                active_current_estimate=p.active_current_estimate,
            )
        if s.kind == "multi-stack":
            model = LinearSystemEfficiency.from_constants(FCSystemConstants())
            systems = [
                FCSystem(model, tank=FuelTank(model=GibbsFuelModel(zeta=model.zeta)))
                for _ in range(s.n_stacks)
            ]
            sharing = (
                EfficiencyProportional() if s.sharing == "efficiency" else EqualShare()
            )
            mgr.source = MultiStackHybrid(
                systems, storage=s.build_storage(), sharing=sharing
            )
        elif s.kind == "battery":
            mgr.source = BatteryOnlySource(s.build_storage())
        mgr.name = self.name
        return mgr
