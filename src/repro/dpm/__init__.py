"""Device-side DPM policies: when to put the device to SLEEP."""

from .policy import IdleDecision, DPMPolicy
from .breakeven import sleep_saving, worst_case_competitive_timeout
from .timeout import TimeoutPolicy
from .predictive import PredictiveShutdownPolicy
from .oracle import OraclePolicy
from .always import AlwaysOnPolicy, AlwaysSleepPolicy
from .stochastic import GeometricMixture, StochasticDPMPolicy, optimal_timeout
from .procrastination import ProcrastinationReport, procrastinate

__all__ = [
    "IdleDecision",
    "DPMPolicy",
    "sleep_saving",
    "worst_case_competitive_timeout",
    "TimeoutPolicy",
    "PredictiveShutdownPolicy",
    "OraclePolicy",
    "AlwaysOnPolicy",
    "AlwaysSleepPolicy",
    "GeometricMixture",
    "StochasticDPMPolicy",
    "optimal_timeout",
    "ProcrastinationReport",
    "procrastinate",
]
