"""Experiment lifecycle store: spec + per-task status as JSON on disk.

One directory per experiment (default root: ``<cache dir>/experiments``,
beside the :class:`~repro.runtime.cache.ResultCache` entries the task
results land in), holding

* ``state.json`` -- the spec, its content hash, and one record per unit
  task walking ``defined -> running -> done | failed -> analyzed``;
* ``state.shard-i-of-n.json`` -- a shard's private copy of the records
  it owns, written by ``fcdpm exp run --shard i/n`` so independent
  hosts never contend on the main file (folded back by ``merge``);
* ``manifest.json`` -- the run-level provenance record
  (:class:`~repro.obs.manifest.RunManifest`); per-task provenance rides
  the cache's own ``<key>.manifest.json`` sidecars, linked from each
  task record through its ``cache_key``.

Writes are atomic (temp file + ``os.replace``), so a killed run leaves
either the previous or the next consistent state -- never a torn file.
``validate_state_dict`` is the schema check ``scripts/check_exp_state.py``
runs in CI.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError
from .spec import ExperimentSpec

#: Bump when a field changes meaning; ``validate_state_dict`` checks it.
STATE_SCHEMA_VERSION = 1

#: Per-task lifecycle states, in order.
TASK_STATUSES = ("defined", "running", "done", "failed", "analyzed")
#: Whole-experiment states (derived from the task records).
EXPERIMENT_STATUSES = ("defined", "running", "done", "failed", "analyzed")

#: Task states that count as "result available".
_SETTLED = ("done", "analyzed")


def default_state_root() -> Path:
    """``$FCDPM_EXP_DIR`` if set, else ``<cache dir>/experiments``."""
    env = os.environ.get("FCDPM_EXP_DIR")
    if env:
        return Path(env)
    from ..runtime.cache import default_cache_dir

    return default_cache_dir() / "experiments"


@dataclass
class TaskRecord:
    """Mutable lifecycle record of one unit task."""

    task_id: str
    status: str = "defined"
    #: ResultCache key of the task's value (provenance link: the entry's
    #: ``<key>.manifest.json`` sits beside it in the cache directory).
    cache_key: str | None = None
    #: ``"i/n"`` when the task was executed by a shard run.
    shard: str | None = None
    wall_s: float = 0.0
    #: True when a resume found the result already cached and skipped
    #: re-execution.
    resumed: bool = False
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "task_id": self.task_id,
            "status": self.status,
            "cache_key": self.cache_key,
            "shard": self.shard,
            "wall_s": self.wall_s,
            "resumed": self.resumed,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TaskRecord":
        return cls(
            task_id=data["task_id"],
            status=data.get("status", "defined"),
            cache_key=data.get("cache_key"),
            shard=data.get("shard"),
            wall_s=data.get("wall_s", 0.0),
            resumed=data.get("resumed", False),
            error=data.get("error"),
        )

    @property
    def settled(self) -> bool:
        """True when a result exists (done or already analyzed)."""
        return self.status in _SETTLED


@dataclass
class ExperimentState:
    """The spec plus every task's lifecycle record."""

    spec: ExperimentSpec
    tasks: dict[str, TaskRecord]
    status: str = "defined"
    created: float = 0.0
    updated: float = 0.0
    fingerprint: str = ""

    @classmethod
    def define(cls, spec: ExperimentSpec) -> "ExperimentState":
        """Fresh state: every expanded task ``defined``."""
        from ..runtime.cache import code_fingerprint

        now = time.time()
        return cls(
            spec=spec,
            tasks={t.task_id: TaskRecord(task_id=t.task_id) for t in spec.expand()},
            status="defined",
            created=now,
            updated=now,
            fingerprint=code_fingerprint(),
        )

    # -- bookkeeping -------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """``{status: task count}`` over every known status."""
        out = {status: 0 for status in TASK_STATUSES}
        for record in self.tasks.values():
            out[record.status] = out.get(record.status, 0) + 1
        return out

    def derive_status(self) -> str:
        """Experiment status implied by the task records."""
        counts = self.counts()
        n = len(self.tasks)
        if counts["failed"]:
            return "failed"
        if counts["analyzed"] == n:
            return "analyzed"
        if counts["done"] + counts["analyzed"] == n:
            return "done"
        if counts["done"] + counts["analyzed"] + counts["running"] > 0:
            return "running"
        return "defined"

    def refresh_status(self) -> str:
        """Recompute and store :attr:`status`; returns it."""
        self.status = self.derive_status()
        self.updated = time.time()
        return self.status

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": STATE_SCHEMA_VERSION,
            "name": self.spec.name,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.content_hash,
            "status": self.status,
            "created": self.created,
            "updated": self.updated,
            "fingerprint": self.fingerprint,
            "tasks": {
                task_id: record.to_dict()
                for task_id, record in sorted(self.tasks.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentState":
        spec = ExperimentSpec.from_dict(data["spec"])
        return cls(
            spec=spec,
            tasks={
                task_id: TaskRecord.from_dict(record)
                for task_id, record in data.get("tasks", {}).items()
            },
            status=data.get("status", "defined"),
            created=data.get("created", 0.0),
            updated=data.get("updated", 0.0),
            fingerprint=data.get("fingerprint", ""),
        )


def validate_state_dict(data: Any) -> list[str]:
    """Structural schema check of a ``state.json`` payload.

    Returns a list of problems (empty = valid): key presence, status
    vocabulary, spec round-trip, content-hash integrity, and task-id
    agreement with the spec's own expansion.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"state must be a JSON object, got {type(data).__name__}"]
    if data.get("schema_version") != STATE_SCHEMA_VERSION:
        problems.append(
            f"schema_version {data.get('schema_version')!r} != "
            f"{STATE_SCHEMA_VERSION}"
        )
    for key in ("name", "spec", "spec_hash", "status", "tasks"):
        if key not in data:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if data["status"] not in EXPERIMENT_STATUSES:
        problems.append(f"unknown experiment status {data['status']!r}")
    try:
        spec = ExperimentSpec.from_dict(data["spec"])
    except (ConfigurationError, KeyError, TypeError) as exc:
        return problems + [f"spec does not round-trip: {exc}"]
    if spec.name != data["name"]:
        problems.append(f"name {data['name']!r} != spec name {spec.name!r}")
    if spec.content_hash != data["spec_hash"]:
        problems.append(
            f"spec_hash {data['spec_hash']!r} != recomputed {spec.content_hash!r}"
        )
    tasks = data["tasks"]
    if not isinstance(tasks, dict) or not tasks:
        return problems + ["tasks must be a non-empty object"]
    expected_ids = {t.task_id for t in spec.expand()}
    if set(tasks) != expected_ids:
        problems.append(
            f"task ids disagree with the spec expansion "
            f"({len(tasks)} recorded vs {len(expected_ids)} expanded)"
        )
    for task_id, record in tasks.items():
        if not isinstance(record, dict):
            problems.append(f"task {task_id}: record must be an object")
            continue
        if record.get("task_id") != task_id:
            problems.append(f"task {task_id}: task_id mismatch")
        if record.get("status") not in TASK_STATUSES:
            problems.append(
                f"task {task_id}: unknown status {record.get('status')!r}"
            )
        if record.get("status") in _SETTLED and not record.get("cache_key"):
            problems.append(f"task {task_id}: settled without a cache_key")
    return problems


def _shard_filename(shard: tuple[int, int]) -> str:
    i, n = shard
    return f"state.shard-{i}-of-{n}.json"


class ExperimentStore:
    """Directory-per-experiment persistence for :class:`ExperimentState`."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_state_root()

    def experiment_dir(self, name: str) -> Path:
        return self.root / name

    def state_path(self, name: str, shard: tuple[int, int] | None = None) -> Path:
        filename = "state.json" if shard is None else _shard_filename(shard)
        return self.experiment_dir(name) / filename

    def exists(self, name: str) -> bool:
        return self.state_path(name).exists()

    def names(self) -> list[str]:
        """Defined experiment names, sorted."""
        if not self.root.exists():
            return []
        return sorted(
            p.parent.name for p in self.root.glob("*/state.json")
        )

    # -- IO ----------------------------------------------------------------

    def save(
        self, state: ExperimentState, shard: tuple[int, int] | None = None
    ) -> Path:
        """Atomically write ``state.json`` (or the shard's sidecar)."""
        path = self.state_path(state.spec.name, shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(state.to_dict(), indent=2, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load(self, name: str, shard: tuple[int, int] | None = None) -> ExperimentState:
        path = self.state_path(name, shard)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise ConfigurationError(
                f"no experiment {name!r} under {self.root} "
                f"(define one with 'fcdpm exp define')"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"unreadable state file {path}: {exc}") from exc
        return ExperimentState.from_dict(data)

    def define(
        self, spec: ExperimentSpec, overwrite: bool = False
    ) -> ExperimentState:
        """Create (or re-create) the experiment's state file.

        Redefining with the *same* content hash is an idempotent no-op
        that returns the existing state; a different hash requires
        ``overwrite=True`` (the old records describe different tasks).
        """
        if self.exists(spec.name) and not overwrite:
            existing = self.load(spec.name)
            if existing.spec.content_hash == spec.content_hash:
                return existing
            raise ConfigurationError(
                f"experiment {spec.name!r} already exists with a different "
                f"spec (hash {existing.spec.content_hash} != "
                f"{spec.content_hash}); use overwrite to redefine"
            )
        state = ExperimentState.define(spec)
        self.save(state)
        return state

    # -- shard merge -------------------------------------------------------

    def shard_paths(self, name: str) -> list[Path]:
        return sorted(self.experiment_dir(name).glob("state.shard-*.json"))

    def merge(self, name: str) -> ExperimentState:
        """Fold every shard sidecar back into the main ``state.json``.

        A shard's settled/failed records win over the main file's
        pending ones; ``done``/``analyzed`` always wins over ``failed``
        (a task that succeeded anywhere succeeded).  Idempotent.
        """
        state = self.load(name)
        for path in self.shard_paths(name):
            try:
                shard_state = ExperimentState.from_dict(
                    json.loads(path.read_text())
                )
            except (OSError, json.JSONDecodeError, KeyError) as exc:
                raise ConfigurationError(
                    f"unreadable shard state {path}: {exc}"
                ) from exc
            if shard_state.spec.content_hash != state.spec.content_hash:
                raise ConfigurationError(
                    f"shard state {path.name} belongs to a different spec"
                )
            for task_id, record in shard_state.tasks.items():
                current = state.tasks.get(task_id)
                if current is None or _merge_wins(record, current):
                    state.tasks[task_id] = record
        state.refresh_status()
        self.save(state)
        return state


#: Status precedence for shard merging (higher wins).
_MERGE_RANK = {
    "defined": 0,
    "running": 1,
    "failed": 2,
    "done": 3,
    "analyzed": 4,
}


def _merge_wins(incoming: TaskRecord, current: TaskRecord) -> bool:
    return _MERGE_RANK[incoming.status] > _MERGE_RANK[current.status]
