"""Lifecycle store: persistence, schema validation, shard merge."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    ExperimentState,
    ExperimentStore,
    scenario_batch_spec,
    validate_state_dict,
)


@pytest.fixture
def spec():
    return scenario_batch_spec(
        "demo", "exp2-fc-dpm", [0, 1], policies=("conv-dpm", "fc-dpm")
    )


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "experiments")


class TestStateRoundTrip:
    def test_define_marks_every_task_defined(self, spec):
        state = ExperimentState.define(spec)
        assert state.status == "defined"
        assert len(state.tasks) == spec.n_tasks
        assert all(r.status == "defined" for r in state.tasks.values())

    def test_to_from_dict(self, spec):
        state = ExperimentState.define(spec)
        state.tasks["t00000"].status = "done"
        state.tasks["t00000"].cache_key = "abc123"
        again = ExperimentState.from_dict(state.to_dict())
        assert again.spec == spec
        assert again.tasks["t00000"].status == "done"
        assert again.tasks["t00000"].cache_key == "abc123"

    def test_derive_status(self, spec):
        state = ExperimentState.define(spec)
        assert state.derive_status() == "defined"
        records = list(state.tasks.values())
        records[0].status = "done"
        assert state.derive_status() == "running"
        for record in records:
            record.status = "done"
        assert state.derive_status() == "done"
        records[0].status = "failed"
        assert state.derive_status() == "failed"

    def test_valid_state_passes_schema_check(self, spec):
        state = ExperimentState.define(spec)
        assert validate_state_dict(state.to_dict()) == []


class TestSchemaValidation:
    def test_rejects_non_dict(self):
        assert validate_state_dict([]) != []

    def test_rejects_bad_version(self, spec):
        data = ExperimentState.define(spec).to_dict()
        data["schema_version"] = 99
        assert any("schema_version" in p for p in validate_state_dict(data))

    def test_rejects_tampered_hash(self, spec):
        data = ExperimentState.define(spec).to_dict()
        data["spec_hash"] = "0" * 16
        assert any("spec_hash" in p for p in validate_state_dict(data))

    def test_rejects_missing_task(self, spec):
        data = ExperimentState.define(spec).to_dict()
        data["tasks"].popitem()
        assert any("task ids disagree" in p for p in validate_state_dict(data))

    def test_rejects_settled_without_cache_key(self, spec):
        data = ExperimentState.define(spec).to_dict()
        data["tasks"]["t00000"]["status"] = "done"
        assert any("cache_key" in p for p in validate_state_dict(data))

    def test_rejects_unknown_status(self, spec):
        data = ExperimentState.define(spec).to_dict()
        data["tasks"]["t00000"]["status"] = "paused"
        assert any("unknown status" in p for p in validate_state_dict(data))


class TestStore:
    def test_save_load_round_trip(self, store, spec):
        state = store.define(spec)
        loaded = store.load(spec.name)
        assert loaded.spec == state.spec
        assert set(loaded.tasks) == set(state.tasks)

    def test_load_missing_raises(self, store):
        with pytest.raises(ConfigurationError, match="no experiment"):
            store.load("nope")

    def test_redefine_same_spec_is_idempotent(self, store, spec):
        store.define(spec)
        state = store.define(spec)  # no error, returns existing
        assert state.spec == spec

    def test_redefine_different_spec_requires_overwrite(self, store, spec):
        store.define(spec)
        other = scenario_batch_spec("demo", "exp2-fc-dpm", [0, 1, 2])
        with pytest.raises(ConfigurationError, match="different"):
            store.define(other)
        state = store.define(other, overwrite=True)
        assert state.spec == other

    def test_names_lists_defined_experiments(self, store, spec):
        assert store.names() == []
        store.define(spec)
        assert store.names() == ["demo"]

    def test_atomic_save_leaves_no_temp_files(self, store, spec):
        store.define(spec)
        leftovers = list(store.experiment_dir("demo").glob("*.tmp"))
        assert leftovers == []


class TestMerge:
    def test_shards_fold_into_main_state(self, store, spec):
        store.define(spec)
        # Simulate two shard runs, each settling its own slice.
        for i in (1, 2):
            shard_state = store.load(spec.name)
            for task in spec.expand():
                if task.index % 2 == i - 1:
                    record = shard_state.tasks[task.task_id]
                    record.status = "done"
                    record.cache_key = f"key-{task.task_id}"
                    record.shard = f"{i}/2"
            store.save(shard_state, shard=(i, 2))
        merged = store.merge(spec.name)
        assert merged.status == "done"
        assert all(r.settled for r in merged.tasks.values())
        # Shard ownership is recorded per task.
        shards = {r.shard for r in merged.tasks.values()}
        assert shards == {"1/2", "2/2"}

    def test_done_wins_over_failed(self, store, spec):
        store.define(spec)
        shard_state = store.load(spec.name)
        shard_state.tasks["t00000"].status = "failed"
        store.save(shard_state, shard=(1, 2))
        main = store.load(spec.name)
        main.tasks["t00000"].status = "done"
        main.tasks["t00000"].cache_key = "k"
        store.save(main)
        merged = store.merge(spec.name)
        assert merged.tasks["t00000"].status == "done"

    def test_merge_rejects_foreign_shard(self, store, spec, tmp_path):
        store.define(spec)
        other = scenario_batch_spec("demo", "exp2-fc-dpm", [5])
        foreign = ExperimentState.define(other)
        path = store.state_path("demo", shard=(1, 2))
        path.write_text(json.dumps(foreign.to_dict()))
        with pytest.raises(ConfigurationError, match="different spec"):
            store.merge("demo")
