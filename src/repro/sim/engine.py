"""Minimal discrete-event simulation core.

A classic calendar-queue engine: events are ``(time, priority, seq)``
ordered callbacks.  The slot simulator integrates closed-form per
segment; this engine exists for *event-driven* models (request
arrivals, timers, state-machine transitions) and is used by
:class:`~repro.sim.eventsim.EventDrivenSimulator` to cross-validate the
slot-level results -- two independently coded simulators agreeing on
fuel numbers is the repository's main correctness check.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback; comparison order is (time, priority, seq)."""

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        self.cancelled = True


class Engine:
    """Event loop with monotonic simulated time."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.n_dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time (s)."""
        return self._now

    def schedule(
        self, delay: float, action: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Lower ``priority`` runs first among simultaneous events.
        Returns the event handle (cancellable).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        self._seq += 1
        event = Event(self._now + delay, priority, self._seq, action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, action: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        return self.schedule(time - self._now, action, priority)

    def run(self, until: float | None = None) -> float:
        """Dispatch events in order until the queue drains or ``until``.

        Returns the final simulated time.  Re-entrant calls are
        rejected (an action must not call ``run``).
        """
        if self._running:
            raise SimulationError("engine.run is not re-entrant")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                self.n_dispatched += 1
                event.action()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def peek(self) -> float | None:
        """Time of the next pending event, or None."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return sum(not e.cancelled for e in self._queue)
