"""Fig. 2 bench: FC stack voltage & power versus stack current."""

from repro.analysis.figures import fig2_stack_iv_curve
from repro.analysis.report import ascii_plot, format_series


def test_bench_fig2_stack_iv_curve(benchmark, emit):
    data = benchmark(fig2_stack_iv_curve)

    report = "\n".join(
        [
            "FIG 2 -- BCS 20 W stack output characteristics",
            "paper anchors: Vo = 18.2 V, max power ~20 W, falling V(I)",
            format_series("Vfc (V) vs Ifc (A)", data["current"], data["voltage"]),
            format_series("P (W) vs Ifc (A)", data["current"], data["power"]),
            f"measured: Voc = {data['voltage'][0]:.2f} V, "
            f"MPP = {float(data['p_mpp']):.2f} W @ {float(data['i_mpp']):.3f} A",
            ascii_plot(data["current"], data["voltage"],
                       title="Vfc vs Ifc", y_label="V"),
            ascii_plot(data["current"], data["power"],
                       title="P vs Ifc", y_label="W"),
        ]
    )
    emit("fig2", report)

    assert data["voltage"][0] == float(f"{data['voltage'][0]:.6g}")
    assert 19.0 < float(data["p_mpp"]) < 21.0
