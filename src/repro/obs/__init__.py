"""Structured telemetry: tracing spans, metrics, manifests, exports.

The observability layer for the runtime/sim/power stack.  Four pieces:

:mod:`repro.obs.tracer`
    Hierarchical timed :class:`Span` trees with thread-safe context and
    cross-process propagation (workers export spans as dicts; the
    coordinator :meth:`~repro.obs.tracer.Tracer.adopt`-s and re-parents
    them).
:mod:`repro.obs.metrics`
    A :class:`MetricsRegistry` of counters/gauges/histograms behind a
    small canonical instrument vocabulary (see docs/observability.md).
:mod:`repro.obs.manifest`
    :class:`RunManifest` provenance records written alongside cached and
    exported results.
:mod:`repro.obs.export`
    JSONL dumps, Chrome ``chrome://tracing`` files, human summaries
    (surfaced as ``fcdpm trace summary`` / ``fcdpm run --trace``).

Two live-telemetry companions stream state *during* a run:

:mod:`repro.obs.live`
    A background :class:`LiveFlusher` thread publishing atomic
    heartbeat JSONs (progress, rate, ETA, stall detection) per
    run/shard, polled by ``fcdpm exp watch`` / ``fcdpm top``.
:mod:`repro.obs.openmetrics`
    OpenMetrics text exposition of the full metrics snapshot --
    renderer, atomic writer, parser, and validator.

Everything is **off by default** and reached through the
:data:`~repro.obs.state.OBS` switchboard -- instrumented hot paths cost
one attribute test when disabled (benchmarked under 2% on the
vectorized batch bench), and cold paths go through the null-object
tracer.  Zero third-party dependencies.
"""

from .export import (
    read_jsonl,
    trace_summary,
    write_chrome_trace,
    write_spans_jsonl,
    write_trace_bundle,
)
from .live import (
    HEARTBEAT_SCHEMA_VERSION,
    Heartbeat,
    LiveFlusher,
    LiveProgress,
    heartbeat_age,
    heartbeat_path,
    is_stalled,
    iter_heartbeats,
    live_interval,
    validate_heartbeat,
)
from .manifest import MANIFEST_SCHEMA_VERSION, RunManifest, build_manifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .openmetrics import (
    parse_openmetrics,
    render_openmetrics,
    validate_exposition,
    write_openmetrics,
)
from .schema import (
    validate_chrome_trace,
    validate_manifest,
    validate_span,
    validate_span_set,
    validate_trace_dir,
)
from .state import OBS, Observability, disable, enable, observing
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "HEARTBEAT_SCHEMA_VERSION",
    "MANIFEST_SCHEMA_VERSION",
    "NULL_TRACER",
    "OBS",
    "Counter",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "LiveFlusher",
    "LiveProgress",
    "MetricsRegistry",
    "NullTracer",
    "Observability",
    "RunManifest",
    "Span",
    "Tracer",
    "build_manifest",
    "disable",
    "enable",
    "heartbeat_age",
    "heartbeat_path",
    "is_stalled",
    "iter_heartbeats",
    "live_interval",
    "observing",
    "parse_openmetrics",
    "read_jsonl",
    "render_openmetrics",
    "trace_summary",
    "validate_exposition",
    "validate_heartbeat",
    "validate_chrome_trace",
    "validate_manifest",
    "validate_span",
    "validate_span_set",
    "validate_trace_dir",
    "write_chrome_trace",
    "write_openmetrics",
    "write_spans_jsonl",
    "write_trace_bundle",
]
