"""Event-driven re-implementation of the trace simulation.

Drives the same :class:`~repro.core.manager.PowerManager` abstractions
as :class:`~repro.sim.slotsim.SlotSimulator`, but through the generic
:class:`~repro.sim.engine.Engine`: task requests arrive as events, the
device is a live :class:`~repro.devices.device.DPMDevice` state machine,
and the power source integrates charge between events.

The two simulators are *scheduled* completely differently -- that
independence is the cross-check -- but both execute segments through the
shared :class:`~repro.sim.integrator.SegmentIntegrator`, so the ledger
math exists exactly once.  The test suite asserts their fuel totals
agree to float precision on identical traces, which guards the
scheduling layers against bookkeeping bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.baselines import SlotActuals, SlotStart
from ..core.manager import PowerManager
from ..devices.device import DPMDevice
from ..devices.states import PowerState
from ..workload.trace import LoadTrace
from .integrator import (
    Segment,
    SegmentIntegrator,
    plan_active_segments,
    plan_idle_segments,
)
from .slotsim import SimulationResult


@dataclass
class _PhasePlan:
    """Load segments of the phase currently executing."""

    phase: str
    segments: list[Segment]


class EventDrivenSimulator:
    """Run a trace through the event engine (cross-validation path)."""

    def __init__(self, manager: PowerManager) -> None:
        self.manager = manager
        #: The DPMDevice ledger of the most recent run (None before).
        self.last_device: DPMDevice | None = None

    def run(self, trace: LoadTrace) -> SimulationResult:
        from .engine import Engine

        mgr = self.manager
        source = mgr.source
        device = DPMDevice(mgr.device)
        engine = Engine()
        integrator = SegmentIntegrator(mgr)
        integrator.start_run()

        state = {
            "slot": 0,
            "n_sleeps": 0,
            "n_aborted": 0,
        }
        slots = list(trace)

        def execute_phase(plan: _PhasePlan, then) -> None:
            """Chain the phase's segments through timed events.

            Each segment is integrated when its event fires.  Events of
            a phase chain strictly sequentially and nothing else touches
            the source in between, so integrating at fire time sees the
            same storage state the segment started with.
            """
            remaining = sum(s.duration for s in plan.segments)
            demand = sum(s.duration * s.i_load for s in plan.segments)

            def run_segment(idx: int, remaining: float, demand: float) -> None:
                if idx >= len(plan.segments):
                    then()
                    return
                seg = plan.segments[idx]

                def finish() -> None:
                    integrator.integrate(
                        state["slot"], plan.phase, seg, remaining, demand
                    )
                    _account_device(seg.kind, seg.duration, seg.i_load)
                    run_segment(
                        idx + 1,
                        remaining - seg.duration,
                        demand - seg.i_load * seg.duration,
                    )

                engine.schedule(seg.duration, finish)

            run_segment(0, remaining, demand)

        def _account_device(kind: str, duration: float, i_load: float) -> None:
            # Parallel device-side ledger: at the end of a run,
            # device.total_charge must equal the source's served load
            # (asserted by the test suite) -- a second, independent set
            # of books for the same physical charge.
            if kind == "standby":
                device.dwell(duration, i_load)
            elif kind == "pd":
                device.move_to(PowerState.SLEEP)  # books i_pd * t_pd
            elif kind == "sleep":
                device.dwell(duration, i_load)
            elif kind == "wu":
                device.move_to(PowerState.STANDBY)  # books i_wu * t_wu
            elif kind == "run":
                # STANDBY<->RUN overheads are absorbed into the segment
                # at the run current (paper Section 3.3.2), so dwell the
                # whole merged segment in RUN without separate
                # transition bookkeeping.
                device.machine.state = PowerState.RUN
                device.dwell(duration, i_load)
                device.machine.state = PowerState.STANDBY

        def start_slot() -> None:
            if state["slot"] >= len(slots):
                return
            slot = slots[state["slot"]]
            decision = mgr.policy.on_idle_start()
            p = mgr.device
            idle_segments, slept, aborted = plan_idle_segments(
                p, slot.t_idle, decision.sleep, decision.sleep_after
            )
            state["n_aborted"] += aborted
            state["n_sleeps"] += slept

            mgr.controller.on_idle_start(
                SlotStart(
                    slot_index=state["slot"],
                    sleeping=slept,
                    i_idle=p.i_slp if slept else p.i_sdb,
                    storage_charge=source.storage.charge,
                )
            )

            active = _PhasePlan("active", plan_active_segments(p, slot))

            def after_active() -> None:
                mgr.policy.on_idle_end(slot.t_idle)
                mgr.controller.on_slot_end(
                    SlotActuals(
                        slot_index=state["slot"],
                        t_idle=slot.t_idle,
                        t_active=slot.t_active,
                        i_active=slot.i_active,
                    )
                )
                state["slot"] += 1
                start_slot()

            execute_phase(
                _PhasePlan("idle", idle_segments),
                then=lambda: execute_phase(active, then=after_active),
            )

        start_slot()
        duration = engine.run()
        self.last_device = device

        return SimulationResult(
            name=mgr.name,
            fuel=source.total_fuel,
            load_charge=source.total_load_charge,
            delivered_charge=source.total_delivered_charge,
            duration=duration,
            bled=source.storage.bled_charge,
            deficit=source.storage.deficit_charge,
            n_slots=len(slots),
            n_sleeps=state["n_sleeps"],
            n_aborted_sleeps=state["n_aborted"],
        )
