"""Optimization-framework tests: every closed-form claim in Section 3."""

import numpy as np
import pytest

from repro.core.optimizer import (
    optimal_flat_current,
    solve_horizon,
    solve_slot,
    solve_slot_numeric,
)
from repro.core.setting import SlotProblem
from repro.errors import RangeError
from repro.fuelcell.efficiency import (
    ComposedSystemEfficiency,
    ConstantSystemEfficiency,
    LinearSystemEfficiency,
)


@pytest.fixture
def model() -> LinearSystemEfficiency:
    return LinearSystemEfficiency()


@pytest.fixture
def motivational() -> SlotProblem:
    """The Section-3.2 example: Ti=20 s @0.2 A, Ta=10 s @1.2 A, Cmax=200."""
    return SlotProblem(t_idle=20, t_active=10, i_idle=0.2, i_active=1.2,
                       c_max=200.0)


class TestEquation11:
    def test_flat_is_charge_weighted_average(self, motivational):
        # (0.2*20 + 1.2*10) / 30 = 0.5333 A (paper: "0.53 A").
        assert optimal_flat_current(motivational) == pytest.approx(16 / 30)

    def test_cend_offset(self):
        # Eq. 13: Cend != Cini shifts the flat value by the deficit/slot time.
        p = SlotProblem(20, 10, 0.2, 1.2, c_ini=2.0, c_end=5.0, c_max=200.0)
        assert optimal_flat_current(p) == pytest.approx((16 + 3) / 30)

    def test_overhead_terms(self):
        # Section 3.3.2: Ta_eff = 12, demand gains 2.4 A-s.
        p = SlotProblem(20, 10, 0.2, 1.2, c_max=200.0, sleeping=True,
                        t_wu=1, t_pd=1, i_wu=1.2, i_pd=1.2)
        assert optimal_flat_current(p) == pytest.approx((16 + 2.4) / 32)

    def test_never_negative(self):
        p = SlotProblem(20, 10, 0.0, 0.0, c_ini=50.0, c_end=0.0, c_max=200.0)
        assert optimal_flat_current(p) == 0.0


class TestMotivationalExample:
    def test_paper_solution(self, model, motivational):
        s = solve_slot(motivational, model)
        assert s.if_idle == pytest.approx(16 / 30, abs=1e-9)
        assert s.is_flat
        assert s.ifc_idle == pytest.approx(0.448, abs=1e-3)
        assert s.fuel == pytest.approx(13.45, abs=0.01)

    def test_charge_returns_to_cini(self, model, motivational):
        s = solve_slot(motivational, model)
        # Storage swing (IF - Ild,i)*Ti = 6.67 A-s; the paper's quoted
        # 10.67 A-s is the FC-delivered idle charge IF*Ti.
        assert s.c_after_idle == pytest.approx(6.67, abs=0.01)
        assert s.c_after_slot == pytest.approx(0.0, abs=1e-9)

    def test_savings_vs_asap(self, model, motivational):
        # Paper Section 3.2: 15.9 % lower than ASAP's 16 A-s.
        s = solve_slot(motivational, model)
        asap = model.fc_current(0.2) * 20 + model.fc_current(1.2) * 10
        assert 1 - s.fuel / asap == pytest.approx(0.159, abs=0.01)

    def test_savings_vs_conv_paper_reading(self, model, motivational):
        # Paper: 62.6 % lower than 36 A-s (their Ifc = 1.2 A reading).
        s = solve_slot(motivational, model)
        assert 1 - s.fuel / 36.0 == pytest.approx(0.626, abs=0.01)

    def test_no_constraint_flags(self, model, motivational):
        s = solve_slot(motivational, model)
        assert not s.range_clamped
        assert not s.capacity_limited
        assert s.bled == 0.0 and s.deficit == 0.0

    def test_flat_beats_any_split(self, model, motivational):
        # Convexity: any feasible (IF,i, IF,a) pair satisfying the charge
        # balance burns at least as much fuel as the flat optimum.
        s = solve_slot(motivational, model)
        t_i, t_a = 20.0, 10.0
        for if_i in np.linspace(0.1, 1.0, 19):
            if_a = (16.0 - if_i * t_i) / t_a
            if not 0.1 <= if_a <= 1.2:
                continue
            fuel = model.fc_current(float(if_i)) * t_i + model.fc_current(
                float(if_a)
            ) * t_a
            assert fuel >= s.fuel - 1e-9


class TestRangeClamping:
    def test_low_demand_clamps_to_floor(self, model):
        p = SlotProblem(t_idle=100, t_active=1, i_idle=0.0, i_active=1.0,
                        c_max=1e6)
        s = solve_slot(p, model)
        assert s.range_clamped
        assert s.if_idle == model.if_min
        # Forced over-supply ends above target: surplus stays in storage
        # (capacity permitting) rather than being bled.
        assert s.c_after_slot > 0

    def test_high_demand_clamps_to_ceiling(self, model):
        p = SlotProblem(t_idle=1, t_active=100, i_idle=1.2, i_active=1.3,
                        c_ini=100.0, c_end=100.0, c_max=200.0)
        s = solve_slot(p, model)
        assert s.range_clamped
        assert s.if_active == model.if_max
        # Shortfall drains the storage below its target.
        assert s.c_after_slot < 100.0

    def test_deficit_reported_when_storage_cannot_cover(self, model):
        p = SlotProblem(t_idle=1, t_active=100, i_idle=1.2, i_active=1.4,
                        c_ini=5.0, c_end=5.0, c_max=5.0)
        s = solve_slot(p, model)
        assert s.deficit > 0

    def test_bleed_reported_at_floor_overflow(self, model):
        # Extreme case of Section 3.3.1: even IF_min overfills the storage.
        p = SlotProblem(t_idle=1000, t_active=1, i_idle=0.0, i_active=0.1,
                        c_ini=1.0, c_end=1.0, c_max=2.0)
        s = solve_slot(p, model)
        assert s.if_idle == model.if_min
        assert s.bled > 0


class TestCapacityLimit:
    def test_idle_output_reduced_to_fit(self, model):
        # Same slot as motivational but Cmax = 5 A-s < the 10.67 A-s swing.
        p = SlotProblem(20, 10, 0.2, 1.2, c_max=5.0)
        s = solve_slot(p, model)
        assert s.capacity_limited
        # IF,i chosen so the storage just fills: (5-0)/20 + 0.2 = 0.45.
        assert s.if_idle == pytest.approx(0.45)
        assert s.c_after_idle == pytest.approx(5.0)
        # IF,a re-derived from Eq. 6: (12 + 0 - 5)/10 = 0.7.
        assert s.if_active == pytest.approx(0.7)
        assert s.c_after_slot == pytest.approx(0.0, abs=1e-9)

    def test_capacity_limited_costs_more_fuel(self, model):
        free = solve_slot(SlotProblem(20, 10, 0.2, 1.2, c_max=200.0), model)
        tight = solve_slot(SlotProblem(20, 10, 0.2, 1.2, c_max=5.0), model)
        assert tight.fuel > free.fuel

    def test_storage_floor_raises_idle_output(self, model):
        # Idle load exceeds the flat value and c_ini is small: IF,i must
        # rise to keep the storage non-negative.
        p = SlotProblem(t_idle=10, t_active=10, i_idle=1.0, i_active=0.2,
                        c_ini=0.0, c_end=0.0, c_max=100.0)
        s = solve_slot(p, model)
        assert s.capacity_limited
        assert s.if_idle >= 1.0 - 1e-9
        assert s.c_after_idle >= -1e-9

    def test_fuel_monotone_in_capacity(self, model):
        fuels = []
        for c_max in (2.0, 5.0, 12.0, 200.0):
            s = solve_slot(SlotProblem(20, 10, 0.2, 1.2, c_max=c_max), model)
            fuels.append(s.fuel)
        assert fuels == sorted(fuels, reverse=True)


class TestCendNotCini:
    def test_refill_raises_output(self, model):
        p = SlotProblem(20, 10, 0.2, 1.2, c_ini=0.0, c_end=3.0, c_max=200.0)
        s = solve_slot(p, model)
        assert s.if_idle == pytest.approx((16 + 3) / 30)
        assert s.c_after_slot == pytest.approx(3.0, abs=1e-9)

    def test_drain_lowers_output(self, model):
        p = SlotProblem(20, 10, 0.2, 1.2, c_ini=3.0, c_end=0.0, c_max=200.0)
        s = solve_slot(p, model)
        assert s.if_idle == pytest.approx((16 - 3) / 30)
        assert s.c_after_slot == pytest.approx(0.0, abs=1e-9)


class TestTransitionOverhead:
    def test_flat_with_overheads(self, model):
        p = SlotProblem(20, 10, 0.2, 1.2, c_max=200.0, sleeping=True,
                        t_wu=1, t_pd=1, i_wu=1.2, i_pd=1.2)
        s = solve_slot(p, model)
        assert s.is_flat
        assert s.if_idle == pytest.approx(18.4 / 32)

    def test_overheads_cost_fuel(self, model):
        base = solve_slot(SlotProblem(20, 10, 0.2, 1.2, c_max=200.0), model)
        ovh = solve_slot(
            SlotProblem(20, 10, 0.2, 1.2, c_max=200.0, sleeping=True,
                        t_wu=1, t_pd=1, i_wu=1.2, i_pd=1.2),
            model,
        )
        assert ovh.fuel > base.fuel


class TestZeroIdle:
    def test_active_only_slot(self, model):
        p = SlotProblem(t_idle=0.0, t_active=10, i_idle=0.0, i_active=0.8,
                        c_max=100.0)
        s = solve_slot(p, model)
        assert s.if_active == pytest.approx(0.8)
        assert s.fuel == pytest.approx(model.fc_current(0.8) * 10)


class TestNumericAgreement:
    @pytest.mark.parametrize(
        "problem",
        [
            SlotProblem(20, 10, 0.2, 1.2, c_max=200.0),
            SlotProblem(20, 10, 0.2, 1.2, c_max=5.0),
            SlotProblem(20, 10, 0.2, 1.2, c_ini=2.0, c_end=4.0, c_max=200.0),
            SlotProblem(20, 10, 0.2, 1.2, c_max=200.0, sleeping=True,
                        t_wu=1, t_pd=1, i_wu=1.2, i_pd=1.2),
            SlotProblem(8, 3, 0.2, 1.1, c_ini=3.0, c_end=3.0, c_max=6.0),
            SlotProblem(12, 5, 0.4, 1.0, c_ini=1.0, c_end=1.0, c_max=4.0),
        ],
    )
    def test_closed_form_matches_slsqp(self, model, problem):
        analytic = solve_slot(problem, model)
        numeric = solve_slot_numeric(problem, model)
        assert numeric.fuel == pytest.approx(analytic.fuel, rel=1e-5)
        assert numeric.if_idle == pytest.approx(analytic.if_idle, abs=1e-4)
        assert numeric.if_active == pytest.approx(analytic.if_active, abs=1e-4)

    def test_numeric_supports_composed_model(self):
        composed = ComposedSystemEfficiency()
        p = SlotProblem(20, 10, 0.2, 1.2, c_max=200.0)
        s = solve_slot_numeric(p, composed)
        # The composed fuel map is still convex-ish; the optimum stays
        # near flat and the fuel is finite and positive.
        assert 0 < s.fuel < 30
        assert abs(s.if_idle - s.if_active) < 0.2

    def test_constant_efficiency_makes_flat_irrelevant(self):
        # With a constant-eta model the fuel map is linear: any feasible
        # setting meeting the balance burns identical fuel.
        m = ConstantSystemEfficiency(eta=0.33)
        p = SlotProblem(20, 10, 0.2, 1.2, c_max=200.0)
        flat = solve_slot(p, m)
        asap_fuel = m.fc_current(0.2) * 20 + m.fc_current(1.2) * 10
        assert flat.fuel == pytest.approx(asap_fuel, rel=1e-9)


class TestHorizon:
    def test_flat_when_unconstrained(self, model):
        durations = [10.0, 10.0, 10.0]
        demands = [2.0, 8.0, 5.0]
        outputs, fuel = solve_horizon(durations, demands, model,
                                      c_ini=50.0, c_max=1000.0)
        assert np.allclose(outputs, outputs[0], atol=1e-4)
        assert outputs[0] == pytest.approx(0.5, abs=1e-4)

    def test_capacity_bound_splits_levels(self, model):
        # A tight storage forbids carrying charge from period 1 to 3.
        durations = [10.0, 10.0]
        demands = [1.0, 11.0]
        outputs, _ = solve_horizon(durations, demands, model,
                                   c_ini=0.0, c_max=2.0)
        # Flat level 0.6 would need 5 A-s carried; capacity 2 forces the
        # second period higher than the first.
        assert outputs[1] > outputs[0]

    def test_matches_single_slot(self, model, motivational):
        outputs, fuel = solve_horizon(
            [20.0, 10.0], [4.0, 12.0], model, c_ini=0.0, c_max=200.0
        )
        s = solve_slot(motivational, model)
        assert fuel == pytest.approx(s.fuel, rel=1e-6)

    def test_rejects_bad_arrays(self, model):
        with pytest.raises(RangeError):
            solve_horizon([10.0], [1.0, 2.0], model)
        with pytest.raises(RangeError):
            solve_horizon([], [], model)
        with pytest.raises(RangeError):
            solve_horizon([10.0, -1.0], [1.0, 1.0], model)
