"""Intro claim-check bench: FC packs outlast equal-mass batteries 4-10x."""

from repro.analysis.energy_density import camcorder_comparison
from repro.analysis.report import format_table


def test_bench_energy_density_claim(benchmark, emit):
    c = benchmark.pedantic(camcorder_comparison, rounds=1, iterations=1)
    rows = [
        ["pack (equal mass)", "runtime (h)"],
        ["Li-ion (150 Wh/kg, 80% usable)", f"{c.battery_hours:.1f}"],
        ["H2 system, conservative (700 Wh/kg, 35%)", f"{c.fc_low_hours:.1f}"],
        ["H2 system, optimistic (1500 Wh/kg, 40%)", f"{c.fc_high_hours:.1f}"],
    ]
    emit(
        "energy_density",
        "CLAIM CHECK -- 'an FC package generates power 4 to 10X longer "
        "than a battery package of the same size and weight'\n"
        + format_table(rows)
        + f"\nadvantage band: x{c.advantage_low:.1f} - x{c.advantage_high:.1f} "
        "at the camcorder's average load; the paper's 4-10x sits inside it.",
    )
    assert c.matches_paper_band
