"""FC output slew-rate ablation.

The paper assumes the FC output retargets instantly at power-state
transitions (Section 3.3 assumption 1).  Physical fuel-flow controllers
ramp: the blower/valve dynamics limit ``|dIF/dt|``.  This module
post-processes a *commanded* piecewise-constant output profile (as
recorded by the simulator) into the ramp-limited profile a real stack
would follow, and accounts the consequences:

* **fuel** changes (the ramp spends time at intermediate currents);
* **delivered-charge error** per transition: while ramping up, the FC
  under-delivers versus the plan -- charge the storage must cover, and
  a sizing requirement on the buffer.

The ablation bench sweeps the slew rate and shows when the paper's
instant-retarget assumption stops being harmless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..fuelcell.efficiency import SystemEfficiencyModel


@dataclass(frozen=True)
class SlewResult:
    """Outcome of ramp-limiting a commanded profile."""

    ideal_fuel: float
    limited_fuel: float
    #: Net charge error (A-s): ideal delivered minus ramp-limited
    #: delivered.  Positive means the storage had to cover a shortfall.
    charge_error: float
    #: Largest single-transition shortfall (A-s) -- the extra storage
    #: headroom the ramp demands.
    worst_transition_shortfall: float
    n_transitions: int

    @property
    def fuel_penalty(self) -> float:
        """Fractional extra fuel of the ramp-limited profile."""
        if self.ideal_fuel == 0:
            return 0.0
        return self.limited_fuel / self.ideal_fuel - 1.0


def apply_slew_limit(
    durations,
    commands,
    model: SystemEfficiencyModel,
    slew_rate: float,
    i_start: float | None = None,
    n_substeps: int = 16,
) -> SlewResult:
    """Ramp-limit a commanded piecewise-constant FC output profile.

    Parameters
    ----------
    durations, commands:
        Matching arrays: each command is held for its duration (the
        ``step_series`` output of a recorded run).
    slew_rate:
        Maximum ``|dIF/dt|`` (A/s).
    i_start:
        Output before the first segment (defaults to the first command,
        i.e. no initial transient).
    n_substeps:
        Fuel-integration resolution within each ramp.
    """
    t = np.asarray(durations, dtype=float)
    c = np.asarray(commands, dtype=float)
    if t.shape != c.shape or t.ndim != 1 or t.size == 0:
        raise ConfigurationError("need matching 1-D duration/command arrays")
    if np.any(t <= 0):
        raise ConfigurationError("durations must be positive")
    if slew_rate <= 0:
        raise ConfigurationError("slew rate must be positive")

    level = float(c[0]) if i_start is None else float(i_start)
    ideal_fuel = 0.0
    limited_fuel = 0.0
    charge_error = 0.0
    worst = 0.0
    n_transitions = 0

    for duration, target in zip(t, c):
        ideal_fuel += model.fc_current(float(target)) * duration
        gap = float(target) - level
        t_ramp = min(abs(gap) / slew_rate, duration)
        if t_ramp > 1e-12 and abs(gap) > 1e-12:
            n_transitions += 1
            reached = level + np.sign(gap) * slew_rate * t_ramp
            # Fuel along the ramp (trapezoid over the convex map).
            grid = np.linspace(level, reached, n_substeps + 1)
            g = np.array([model.fc_current(float(x)) for x in grid])
            limited_fuel += float(np.trapezoid(g, dx=t_ramp / n_substeps))
            # Delivered-charge error of this transition.
            ramp_delivery = 0.5 * (level + reached) * t_ramp
            ideal_delivery = float(target) * t_ramp
            shortfall = ideal_delivery - ramp_delivery
            charge_error += shortfall
            worst = max(worst, abs(shortfall))
            level = reached
        # Hold phase (possibly the whole segment).
        hold = duration - t_ramp
        if hold > 0:
            limited_fuel += model.fc_current(level) * hold

    return SlewResult(
        ideal_fuel=ideal_fuel,
        limited_fuel=limited_fuel,
        charge_error=charge_error,
        worst_transition_shortfall=worst,
        n_transitions=n_transitions,
    )


def slew_rate_sweep(
    durations,
    commands,
    model: SystemEfficiencyModel,
    rates=(0.05, 0.1, 0.25, 0.5, 1.0, 5.0),
) -> dict[float, SlewResult]:
    """Ramp-limit the same profile at several slew rates."""
    return {
        rate: apply_slew_limit(durations, commands, model, rate)
        for rate in rates
    }
