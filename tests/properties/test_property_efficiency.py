"""Property-based tests for efficiency models and the fuel map."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fuelcell.efficiency import LinearSystemEfficiency

alphas = st.floats(min_value=0.2, max_value=0.8)
betas = st.floats(min_value=0.0, max_value=0.15)
outputs = st.floats(min_value=0.0, max_value=1.2, allow_nan=False)


@st.composite
def models(draw):
    alpha = draw(alphas)
    beta = draw(betas)
    assume(alpha - beta * 1.2 > 0.01)
    return LinearSystemEfficiency(alpha=alpha, beta=beta)


class TestFuelMapProperties:
    @given(models(), outputs, outputs)
    @settings(max_examples=300, deadline=None)
    def test_monotone_increasing(self, model, a, b):
        lo, hi = sorted((a, b))
        assert model.fc_current(lo) <= model.fc_current(hi) + 1e-12

    @given(models(), outputs, outputs, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=300, deadline=None)
    def test_convexity(self, model, a, b, lam):
        """g(lam*a + (1-lam)*b) <= lam*g(a) + (1-lam)*g(b)."""
        mid = lam * a + (1 - lam) * b
        lhs = model.fc_current(mid)
        rhs = lam * model.fc_current(a) + (1 - lam) * model.fc_current(b)
        assert lhs <= rhs + 1e-9

    @given(models(), outputs)
    @settings(max_examples=300, deadline=None)
    def test_inverse_roundtrip(self, model, i_f):
        assert model.inverse_fc_current(model.fc_current(i_f)) == pytest.approx(
            i_f, abs=1e-9
        )

    @given(models(), st.floats(min_value=0.01, max_value=1.2))
    @settings(max_examples=300, deadline=None)
    def test_fc_current_exceeds_ideal_draw(self, model, i_f):
        """Ifc >= k*IF always (efficiency < 1 costs fuel)."""
        assume(model.efficiency(i_f) <= 1.0)
        assert model.fc_current(i_f) >= model.k_fuel * i_f - 1e-12

    @given(models(), st.floats(min_value=0.01, max_value=1.19))
    @settings(max_examples=300, deadline=None)
    def test_derivative_positive(self, model, i_f):
        assert model.fc_current_derivative(i_f) > 0

    @given(models(), outputs)
    @settings(max_examples=200, deadline=None)
    def test_clamp_idempotent(self, model, i_f):
        once = model.clamp(i_f)
        assert model.clamp(once) == once
        assert model.in_range(once)


class TestFlatnessOptimality:
    @given(
        models(),
        st.floats(min_value=0.15, max_value=1.15),
        st.floats(min_value=-0.05, max_value=0.05),
        st.floats(min_value=1.0, max_value=50.0),
        st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_flat_never_worse_than_split(self, model, level, spread, t1, t2):
        """Jensen: delivering the same charge flat costs <= any split."""
        hi = level + spread * t1 / (t1 + t2) * 2
        lo = level - spread * t2 / (t1 + t2) * 2
        assume(0.0 <= lo and hi <= 1.2)
        # Same delivered charge by construction:
        flat_charge = level * (t1 + t2)
        split_charge = hi * t1 + lo * t2
        assume(abs(flat_charge - split_charge) / flat_charge < 0.5)
        # Re-derive the exact flat equivalent of the split:
        exact_flat = split_charge / (t1 + t2)
        assume(0.0 <= exact_flat <= 1.2)
        flat_fuel = model.fc_current(exact_flat) * (t1 + t2)
        split_fuel = model.fc_current(hi) * t1 + model.fc_current(lo) * t2
        assert flat_fuel <= split_fuel + 1e-9
