# Convenience targets for the FC-DPM reproduction.

PYTHON ?= python3

.PHONY: install test lint bench bench-smoke bench-vector trace-smoke exp-smoke live-smoke report export examples all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Static checks: ruff if available, byte-compilation always.
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed (pip install -e '.[lint]'); skipping ruff"; \
	fi
	$(PYTHON) -m compileall -q src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Runtime smoke bench: parallel-vs-serial run_seeds, memoized solver,
# sizing-curve fan-out, vectorized-kernel speedup gates (incl. the
# clamp-heavy storage recurrence), and the <2% disabled-telemetry
# overhead gate.  Fast enough for CI; writes benchmarks/out/
# (.txt reports + .json measurements, consolidated BENCH_kernel.json).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_bench_microbench.py -s \
		-k "parallel or cached or vectorized or obs or clamped"

# Telemetry smoke: run a small scenario with tracing on, then validate
# the bundle (manifest.json + spans.jsonl + trace.json) structurally.
trace-smoke:
	$(PYTHON) -m repro.cli run --scenario table2 --trace trace-out/
	$(PYTHON) scripts/check_trace.py trace-out/
	$(PYTHON) -m repro.cli trace summary trace-out/ > /dev/null

# Orchestration smoke: define two experiments, kill one mid-run with
# the crash-injection hook (expected exit 3), resume it to completion,
# merge a sharded run, validate every state file structurally, and
# print the per-cell report.  Everything lands under exp-smoke-out/.
exp-smoke:
	rm -rf exp-smoke-out
	FCDPM_CACHE_DIR=exp-smoke-out $(PYTHON) -m repro.cli exp define smoke-a \
		--scenario exp2-fc-dpm --seeds 0:3 --policies conv-dpm,fc-dpm --fast
	FCDPM_CACHE_DIR=exp-smoke-out $(PYTHON) -m repro.cli exp define smoke-b \
		--scenario exp2-asap-dpm --seeds 0:3 --fast
	FCDPM_CACHE_DIR=exp-smoke-out FCDPM_EXP_ABORT_AFTER=2 \
		$(PYTHON) -m repro.cli exp run smoke-a; test $$? -eq 3
	FCDPM_CACHE_DIR=exp-smoke-out $(PYTHON) -m repro.cli exp resume smoke-a
	FCDPM_CACHE_DIR=exp-smoke-out $(PYTHON) -m repro.cli exp run smoke-b --shard 1/2
	FCDPM_CACHE_DIR=exp-smoke-out $(PYTHON) -m repro.cli exp run smoke-b --shard 2/2
	FCDPM_CACHE_DIR=exp-smoke-out $(PYTHON) -m repro.cli exp merge smoke-b
	$(PYTHON) scripts/check_exp_state.py exp-smoke-out/experiments
	FCDPM_CACHE_DIR=exp-smoke-out $(PYTHON) -m repro.cli exp report smoke-a
	FCDPM_CACHE_DIR=exp-smoke-out $(PYTHON) -m repro.cli exp status
	FCDPM_CACHE_DIR=exp-smoke-out $(PYTHON) -m repro.cli cache stats

# Live-telemetry smoke: run a sharded experiment with --live flushing,
# validate every heartbeat + OpenMetrics exposition structurally
# (scripts/check_live.py), assert the watch/status/top scripting
# surface (exit 0 on a healthy finished run), then inject a stall into
# the heartbeats and assert `exp watch --once` exits 4.  Artifacts land
# under live-smoke-out/.
live-smoke:
	rm -rf live-smoke-out
	FCDPM_CACHE_DIR=live-smoke-out $(PYTHON) -m repro.cli exp define live-a \
		--scenario exp2-fc-dpm --seeds 0:4 --policies conv-dpm,fc-dpm --fast
	FCDPM_CACHE_DIR=live-smoke-out $(PYTHON) -m repro.cli exp run live-a \
		--shard 1/2 --live --live-interval 0.2
	FCDPM_CACHE_DIR=live-smoke-out $(PYTHON) -m repro.cli exp run live-a \
		--shard 2/2 --live --live-interval 0.2
	FCDPM_CACHE_DIR=live-smoke-out $(PYTHON) -m repro.cli exp merge live-a
	$(PYTHON) scripts/check_live.py live-smoke-out/experiments/live-a \
		--require-final --require-sample exp_tasks_done_total \
		--require-sample sim_batch_rows_completed_total
	FCDPM_CACHE_DIR=live-smoke-out $(PYTHON) -m repro.cli exp watch live-a --once
	FCDPM_CACHE_DIR=live-smoke-out $(PYTHON) -m repro.cli exp status live-a --json > /dev/null
	FCDPM_CACHE_DIR=live-smoke-out $(PYTHON) -m repro.cli top --once
	$(PYTHON) scripts/check_live.py live-smoke-out/experiments/live-a --inject-stall
	FCDPM_CACHE_DIR=live-smoke-out $(PYTHON) -m repro.cli exp watch live-a --once; \
		test $$? -eq 4
	@echo "live-smoke ok (stall detection verified)"

# Just the vectorized-kernel gates: single-trace >= 4x (fc-dpm >= 2x),
# batch serial >= 12x (>= 50x with >= 4 cores), fc batch >= 2.5x,
# all bit-exact against the scalar simulator.
bench-vector:
	$(PYTHON) -m pytest benchmarks/test_bench_microbench.py -s \
		-k "vectorized or clamped"

report:
	$(PYTHON) -m repro.cli report

export:
	$(PYTHON) -m repro.cli export artifacts/

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

all: test bench examples
