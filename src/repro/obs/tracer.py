"""Hierarchical tracing spans with a null-object disabled fast path.

A :class:`Span` is one timed operation; spans nest, so a run produces a
tree (``run:table2 > simulate > solve_slot``).  The design constraints,
in priority order:

1. **Zero cost when off** -- telemetry is disabled by default, and the
   disabled path must not show up in the vectorized-batch benchmark.
   :class:`NullTracer` hands out one shared, immutable
   :data:`NULL_SPAN` whose every method is a no-op; hot call sites
   additionally guard on ``OBS.enabled`` so that not even a method call
   is paid per segment (see :mod:`repro.obs.runtime`).
2. **Process-safe propagation** -- :class:`~repro.runtime.parallel.
   ParallelMap` workers run in separate processes and cannot share the
   coordinator's tracer.  Workers build a local :class:`Tracer`, finish
   their spans, and ship them back *as plain dicts* with the chunk
   results; the coordinator calls :meth:`Tracer.adopt` to re-parent the
   foreign roots under its own active span.  Span ids embed the pid, so
   merged trees never collide.
3. **Thread safety** -- the active-span stack is thread-local (each
   thread gets its own branch of the tree); the finished list is
   lock-protected.

Wall-clock timestamps (``time.time``) anchor spans on a shared timeline
across processes; durations come from ``time.perf_counter`` so they are
monotonic even if the wall clock steps.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

#: Schema version stamped on every exported span dict.
SPAN_SCHEMA_VERSION = 1

#: Process-global id source shared by every tracer instance.  Span ids
#: are ``{pid:x}-{n:x}``; keeping one counter per *process* (not per
#: tracer) means a pooled worker that builds a fresh tracer per chunk
#: still never reuses an id, so merged trees cannot collide.
_ID_SOURCE = itertools.count()


@dataclass
class Span:
    """One timed, attributed operation in the trace tree.

    Used as a context manager (via :meth:`Tracer.span`); attributes can
    be attached at creation or during the span with :meth:`set`.
    """

    name: str
    span_id: str
    parent_id: str | None
    #: Wall-clock start (s since the epoch) -- shared across processes.
    t_wall: float
    #: Process / thread that ran the span.
    pid: int
    thread: str
    #: Monotonic start; only meaningful inside the owning process.
    _t0: float = 0.0
    #: Span length (s); set when the span finishes.
    duration: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    #: "ok" or "error:<ExceptionType>".
    status: str = "ok"

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; later values win."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for JSONL export and cross-process transfer."""
        return {
            "type": "span",
            "schema": SPAN_SCHEMA_VERSION,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_wall": self.t_wall,
            "duration": self.duration,
            "pid": self.pid,
            "thread": self.thread,
            "status": self.status,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            t_wall=data.get("t_wall", 0.0),
            pid=data.get("pid", 0),
            thread=data.get("thread", ""),
            duration=data.get("duration"),
            attrs=dict(data.get("attrs", {})),
            status=data.get("status", "ok"),
        )


class _SpanHandle:
    """Context-manager wrapper that finishes a span on exit."""

    __slots__ = ("tracer", "span_obj")

    def __init__(self, tracer: "Tracer", span_obj: Span) -> None:
        self.tracer = tracer
        self.span_obj = span_obj

    def set(self, **attrs: Any) -> "_SpanHandle":
        self.span_obj.set(**attrs)
        return self

    @property
    def span_id(self) -> str:
        return self.span_obj.span_id

    def finish(self) -> None:
        """Close the span explicitly (for non-``with`` call sites)."""
        self.tracer._finish(self.span_obj)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span_obj.status = f"error:{exc_type.__name__}"
        self.tracer._finish(self.span_obj)


class _NullSpan:
    """The shared no-op span: every operation returns immediately.

    One instance (:data:`NULL_SPAN`) serves every disabled ``span()``
    call -- no allocation, no branching beyond the method dispatch.
    """

    __slots__ = ()
    span_id = ""

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``span()`` hands out the shared no-op span."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    @property
    def current_span_id(self) -> None:
        return None

    def export(self) -> list[dict]:
        return []

    def adopt(self, span_dicts, parent_id: str | None = None) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a tree of finished :class:`Span` records.

    ``span(name, **attrs)`` opens a child of the calling thread's
    current span and returns a context manager::

        tracer = Tracer()
        with tracer.span("table2", seed=3):
            with tracer.span("simulate"):
                ...
        spans = tracer.finished        # depth-first completion order

    The active stack is per-thread; finished spans land in one shared,
    lock-protected list in completion order (children before parents).
    """

    enabled = True

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.finished: list[Span] = []

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current_span_id(self) -> str | None:
        """Id of the calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a child span of the current one; use as a context manager."""
        span_obj = Span(
            name=name,
            span_id=f"{os.getpid():x}-{next(_ID_SOURCE):x}",
            parent_id=self.current_span_id,
            t_wall=time.time(),
            pid=os.getpid(),
            thread=threading.current_thread().name,
            _t0=time.perf_counter(),
            attrs=dict(attrs),
        )
        self._stack().append(span_obj)
        return _SpanHandle(self, span_obj)

    def _finish(self, span_obj: Span) -> None:
        span_obj.duration = time.perf_counter() - span_obj._t0
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()
        else:  # out-of-order exit; drop it from wherever it sits
            try:
                stack.remove(span_obj)
            except ValueError:
                pass
        with self._lock:
            self.finished.append(span_obj)

    # -- cross-process merge -----------------------------------------------

    def export(self) -> list[dict]:
        """All finished spans as plain dicts (for JSONL / worker transfer)."""
        with self._lock:
            return [s.to_dict() for s in self.finished]

    def adopt(self, span_dicts, parent_id: str | None = None) -> None:
        """Merge foreign (worker-exported) spans into this tracer.

        Spans whose parent is not part of the shipment -- the worker's
        roots -- are re-parented under ``parent_id`` (default: the
        calling thread's current span), so the coordinator's tree stays
        connected.  Ids embed the originating pid and are kept verbatim.
        """
        span_dicts = list(span_dicts)
        if parent_id is None:
            parent_id = self.current_span_id
        shipped = {d["span_id"] for d in span_dicts}
        adopted = []
        for data in span_dicts:
            span_obj = Span.from_dict(data)
            if span_obj.parent_id not in shipped:
                span_obj.parent_id = parent_id
            adopted.append(span_obj)
        with self._lock:
            self.finished.extend(adopted)
