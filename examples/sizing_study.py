#!/usr/bin/env python3
"""Design-space study: sizing the charge storage for a target lifetime.

The paper motivates hybrid sources by noting the FC can be sized for the
*average* load once a buffer absorbs the peaks (Section 2.2).  This
example turns that argument into numbers: for the camcorder workload it
sweeps the storage capacity, runs FC-DPM, and reports fuel, lifetime on
a fixed hydrogen cartridge, and how often the capacity constraint binds
in the optimizer.

Run:  python examples/sizing_study.py
"""

from repro import PowerManager, camcorder_device_params, generate_mpeg_trace
from repro.analysis.report import format_table
from repro.fuelcell.fuel import GibbsFuelModel
from repro.sim import SlotSimulator


#: A small hydrogen cartridge: 10 normal liters ~ 0.446 mol ~ 28 W-h Gibbs.
CARTRIDGE_NL = 10.0


def cartridge_capacity_as() -> float:
    """Stack charge (A-s) one cartridge sustains, via the Gibbs model."""
    model = GibbsFuelModel(zeta=37.5)
    # Invert norm_liters(charge): charge = NL / 22.414 * dG / zeta.
    import repro.units as units

    return CARTRIDGE_NL / 22.414 * units.GIBBS_ENERGY_H2_HHV / model.zeta


def main() -> None:
    trace = generate_mpeg_trace()
    dev = camcorder_device_params()
    tank = cartridge_capacity_as()
    print(f"workload: {trace.duration / 60:.1f} min of MPEG encode/write")
    print(f"cartridge: {CARTRIDGE_NL:g} NL H2 = {tank:.0f} A-s of stack charge\n")

    rows = [["Cmax (A-s)", "fuel (A-s)", "lifetime (h)", "capacity-limited slots"]]
    for capacity in (1.0, 2.0, 4.0, 6.0, 12.0, 24.0, 60.0):
        mgr = PowerManager.fc_dpm(
            dev, storage_capacity=capacity, storage_initial=capacity / 2
        )
        result = SlotSimulator(mgr).run(trace)
        limited = sum(s.capacity_limited for s in mgr.controller.solutions)
        lifetime_h = result.metrics.lifetime(tank) / 3600.0
        rows.append(
            [
                f"{capacity:g}",
                f"{result.fuel:.1f}",
                f"{lifetime_h:.2f}",
                f"{limited}/{len(mgr.controller.solutions)}",
            ]
        )
    print(format_table(rows, title="FC-DPM vs storage capacity"))
    print("\nreading: past ~6 A-s (the paper's 1 F supercap) extra capacity "
          "buys little -- the optimizer stops hitting the Cmax constraint.")

    # -- Section 2.2: how much smaller can the stack itself be? ----------
    from repro.fuelcell.sizing import downsizing_curve

    curve = downsizing_curve(trace, dev, capacities=(0.0, 2.0, 6.0, 24.0))
    rows = [["Cmax (A-s)", "required IF_max (A)", "stack downsizing"]]
    for capacity, r in curve.items():
        rows.append([f"{capacity:g}", f"{r.hybrid_if_max:.3f}",
                     f"x{r.downsizing_factor:.2f}"])
    print()
    print(format_table(
        rows, title="Section 2.2 -- minimum FC output vs storage buffer"
    ))
    print("\nreading: a stand-alone FC must cover the 1.22 A peak; the "
          "paper's 6 A-s buffer lets a stack less than half that size "
          "carry the same workload.")


if __name__ == "__main__":
    main()
