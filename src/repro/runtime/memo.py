"""Memoization of the hot closed-form kernels.

Profiling the experiment layer shows two dominant costs per simulated
slot: the Section-3.3 closed-form solve (:func:`~repro.core.optimizer.
solve_slot`, ~5 us) and Eq.-4 fuel-map evaluations (~0.2 us each, many
per slot).  Monte-Carlo sweeps and ablations re-pose *identical*
problems constantly -- the same trace simulated under several policies,
the same predictor state recurring across seeds -- so both kernels are
natural memoization targets:

* the fuel map is cached with ``functools.lru_cache`` inside
  :mod:`repro.fuelcell.efficiency` (a shared module-level table keyed
  by the linear-model coefficients);
* :func:`solve_slot_memo` here keys full slot solves by
  ``(model.cache_token, SlotProblem)`` -- a frozen dataclass and a
  tuple, so the key is a plain hash and a cache hit skips the whole
  decision procedure.

Only models that expose a value-semantics ``cache_token`` participate;
anything else (e.g. a stateful composed model) transparently degrades
to a direct solve.  The cache is process-local: parallel workers each
warm their own, which preserves determinism (the solver is pure).

The solver is imported lazily so this module sits below
:mod:`repro.core` in the import graph (``core.fc_dpm`` imports us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..obs import OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.setting import SlotProblem, SlotSolution
    from ..fuelcell.efficiency import SystemEfficiencyModel

#: Bound on distinct (model, problem) entries; reached only by
#: adversarial workloads, at which point the table is simply dropped.
SOLVER_CACHE_MAX = 1 << 17

_CACHE: dict[tuple, "SlotSolution"] = {}
_SOLVE = None


def _solver():
    """Resolve :func:`repro.core.optimizer.solve_slot` once, lazily."""
    global _SOLVE
    if _SOLVE is None:
        from ..core.optimizer import solve_slot

        _SOLVE = solve_slot
    return _SOLVE


@dataclass
class SolverCacheStats:
    """Hit/miss counters of the slot-solver cache."""

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


_STATS = SolverCacheStats()


def solve_slot_memo(
    problem: "SlotProblem", model: "SystemEfficiencyModel"
) -> "SlotSolution":
    """Memoized :func:`~repro.core.optimizer.solve_slot`.

    Bit-identical to the direct call (the solver is a pure function of
    ``(problem, model)``); repeated identical slots return the cached
    frozen :class:`~repro.core.setting.SlotSolution` in well under a
    microsecond.
    """
    token = getattr(model, "cache_token", None)
    if token is None:
        _STATS.uncacheable += 1
        if OBS.enabled:
            OBS.metrics.counter("runtime.memo.uncacheable").inc()
        return _solver()(problem, model)
    key = (token, problem)
    solution = _CACHE.get(key)
    if solution is None:
        _STATS.misses += 1
        if OBS.enabled:
            OBS.metrics.counter("runtime.memo.misses").inc()
        if len(_CACHE) >= SOLVER_CACHE_MAX:
            _CACHE.clear()
        solution = _CACHE[key] = _solver()(problem, model)
    else:
        _STATS.hits += 1
        if OBS.enabled:
            OBS.metrics.counter("runtime.memo.hits").inc()
    return solution


def solver_cache_stats() -> SolverCacheStats:
    """Current counters (live object; copy if you need a snapshot)."""
    return _STATS


def clear_solver_cache() -> None:
    """Drop every cached solution and zero the counters."""
    _CACHE.clear()
    _STATS.hits = _STATS.misses = _STATS.uncacheable = 0


def solver_cache_size() -> int:
    """Number of memoized (model, problem) entries."""
    return len(_CACHE)
