"""FC stack model: the paper's Fig. 2 object.

Wraps a :class:`~repro.fuelcell.polarization.PolarizationCurve` with the
stack-level quantities the paper uses: output characteristics
``Vfc(Ifc)`` / ``P(Ifc)``, the maximum power capacity, and the
load-following range derived from it.
"""

from __future__ import annotations

import numpy as np

from ..config import FCSystemConstants
from ..errors import ConfigurationError
from .polarization import BCS_20W_CELL, PolarizationCurve, PolarizationParams


class FCStack:
    """A series stack of PEM cells.

    Parameters
    ----------
    params:
        Per-cell polarization parameters (defaults to the BCS 20 W
        calibration).
    n_cells:
        Series cell count (paper: 20).
    """

    def __init__(
        self,
        params: PolarizationParams = BCS_20W_CELL,
        n_cells: int = 20,
    ) -> None:
        self.curve = PolarizationCurve(params, n_cells=n_cells)
        self.n_cells = n_cells
        self._mpp: tuple[float, float] | None = None

    @classmethod
    def bcs_20w(cls) -> "FCStack":
        """The paper's BCS 20 W, 20-cell stack."""
        return cls(BCS_20W_CELL, n_cells=20)

    # -- electrical characteristics ----------------------------------------

    @property
    def open_circuit_voltage(self) -> float:
        """Stack voltage at zero current (paper: Vo = 18.2 V)."""
        return float(self.curve.stack_voltage(0.0))

    def voltage(self, i_fc: float | np.ndarray) -> float | np.ndarray:
        """Stack voltage ``Vfc`` (V) at stack current ``Ifc`` (A)."""
        return self.curve.stack_voltage(i_fc)

    def power(self, i_fc: float | np.ndarray) -> float | np.ndarray:
        """Stack output power (W) at stack current ``Ifc`` (A)."""
        return self.curve.stack_power(i_fc)

    @property
    def max_power_point(self) -> tuple[float, float]:
        """``(Ifc_A, P_W)`` at maximum output power (cached)."""
        if self._mpp is None:
            self._mpp = self.curve.max_power_point()
        return self._mpp

    @property
    def power_capacity(self) -> float:
        """Maximum deliverable power (W); determines load-following extent."""
        return self.max_power_point[1]

    def current_for_power(self, power_w: float) -> float:
        """Stack current needed to source ``power_w`` on the rising branch."""
        return self.curve.current_for_power(power_w)

    # -- efficiency ----------------------------------------------------------

    def stack_efficiency(
        self, i_fc: float | np.ndarray, zeta: float = FCSystemConstants().zeta
    ) -> float | np.ndarray:
        """Stack efficiency ``Vfc / zeta`` (paper Section 2.3).

        The paper defines stack efficiency as stack power over Gibbs power
        ``zeta * Ifc``; the ``Ifc`` cancels, leaving ``Vfc / zeta`` -- the
        efficiency tracks the polarization voltage.
        """
        if zeta <= 0:
            raise ConfigurationError("zeta must be positive")
        return self.voltage(i_fc) / zeta

    def sweep(self, n_points: int = 200, i_max: float | None = None):
        """``(Ifc, Vfc, P)`` arrays for plotting Fig. 2."""
        return self.curve.sweep(n_points=n_points, i_max=i_max)
