"""Multi-stack hybrid source: sharing strategies and ledger behaviour."""

from __future__ import annotations

import pytest

from repro.config import FCSystemConstants
from repro.errors import ConfigurationError, RangeError
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.fuelcell.fuel import FuelTank, GibbsFuelModel
from repro.fuelcell.system import FCSystem
from repro.power.hybrid import HybridPowerSource
from repro.power.multistack import (
    EfficiencyProportional,
    EqualShare,
    MultiStackHybrid,
)
from repro.power.storage import SuperCapacitor


def _system(model=None) -> FCSystem:
    m = model if model is not None else LinearSystemEfficiency.from_constants(
        FCSystemConstants()
    )
    return FCSystem(m, tank=FuelTank(model=GibbsFuelModel(zeta=m.zeta)))


def _twins(n: int) -> MultiStackHybrid:
    return MultiStackHybrid(
        [_system() for _ in range(n)],
        storage=SuperCapacitor(capacity=6.0, initial_charge=3.0),
    )


class TestConstruction:
    def test_rejects_empty_system_list(self):
        with pytest.raises(ConfigurationError):
            MultiStackHybrid([])

    def test_rejects_mismatched_rails(self):
        a = _system()
        b = _system(LinearSystemEfficiency(v_out=24.0))
        with pytest.raises(ConfigurationError):
            MultiStackHybrid([a, b])

    def test_aggregate_load_following_range(self):
        src = _twins(3)
        lo, hi = src.load_following_range
        one = _system().model
        assert lo == pytest.approx(3 * one.if_min)
        assert hi == pytest.approx(3 * one.if_max)

    def test_kind_tag(self):
        assert _twins(2).kind == "multi-stack"


class TestSharing:
    def test_equal_share_splits_evenly(self):
        src = _twins(2)
        realised = src.set_fc_output(0.8)
        assert realised == pytest.approx(0.8)
        assert [fc.output_current for fc in src.systems] == pytest.approx([0.4, 0.4])

    def test_efficiency_proportional_degenerates_for_twins(self):
        src = MultiStackHybrid(
            [_system(), _system()],
            storage=SuperCapacitor(capacity=6.0, initial_charge=3.0),
            sharing=EfficiencyProportional(),
        )
        src.set_fc_output(0.8)
        assert [fc.output_current for fc in src.systems] == pytest.approx([0.4, 0.4])

    def test_efficiency_proportional_relieves_weaker_stack(self):
        strong = LinearSystemEfficiency(alpha=0.45, beta=0.13)
        weak = LinearSystemEfficiency(alpha=0.30, beta=0.13)
        src = MultiStackHybrid(
            [_system(strong), _system(weak)],
            storage=SuperCapacitor(capacity=6.0, initial_charge=3.0),
            sharing=EfficiencyProportional(),
        )
        src.set_fc_output(0.8)
        a, b = (fc.output_current for fc in src.systems)
        assert a > b
        assert a + b == pytest.approx(0.8)

    def test_per_stack_clamping_bounds_realised_total(self):
        src = _twins(2)
        realised = src.set_fc_output(10.0)  # far above 2 * IF_max
        _, hi = src.load_following_range
        assert realised == pytest.approx(hi)


class TestStep:
    def test_step_sums_stack_fuel_and_buffers_difference(self):
        src = _twins(2)
        src.set_fc_output(0.8)
        step = src.step(i_load=0.5, dt=10.0)
        assert step.stack_currents == pytest.approx((0.4, 0.4))
        assert step.i_f == pytest.approx(0.8)
        assert step.storage_delta == pytest.approx(0.3 * 10.0)
        assert step.fuel > 0
        assert step.source_kind == "multi-stack"

    def test_two_half_stacks_match_one_full_stack_fuel(self):
        # eta(I/2) > eta(I) for the falling linear law, so two half-load
        # stacks consume *less* stack charge than one stack at full load
        # -- the economic argument for ganging.
        single = HybridPowerSource(
            storage=SuperCapacitor(capacity=6.0, initial_charge=3.0)
        )
        double = _twins(2)
        single.set_fc_output(0.8)
        double.set_fc_output(0.8)
        s1 = single.step(0.8, 10.0)
        s2 = double.step(0.8, 10.0)
        assert s2.fuel < s1.fuel

    def test_negative_load_rejected(self):
        src = _twins(2)
        with pytest.raises(RangeError):
            src.step(-0.1, 1.0)

    def test_reset_clears_every_tank_and_ledger(self):
        src = _twins(3)
        src.set_fc_output(0.9)
        src.step(0.5, 20.0)
        assert src.total_fuel > 0
        src.reset(storage_charge=3.0)
        assert src.total_fuel == 0.0
        assert src.storage.charge == 3.0
        for fc in src.systems:
            assert fc.tank.consumed == 0.0


class TestShareInvariants:
    @pytest.mark.parametrize("strategy", [EqualShare(), EfficiencyProportional()])
    def test_shares_sum_to_command(self, strategy):
        systems = [_system() for _ in range(3)]
        shares = strategy.shares(0.9, systems)
        assert len(shares) == 3
        assert sum(shares) == pytest.approx(0.9)
