"""Ordered parallel map over a process pool, with a serial fallback.

:class:`ParallelMap` is the one dispatch primitive every experiment
layer shares (``run_seeds``, ``downsizing_curve``, the ablation sweeps,
``full_report``).  Design constraints, in order:

1. **Determinism** -- results come back in input order and are
   bit-identical to a serial run; tasks are dispatched in fixed
   contiguous chunks (no work stealing), so the computation itself is
   independent of scheduling.
2. **Graceful degradation** -- ``workers <= 1`` runs inline with zero
   pool overhead, and any *infrastructure* failure (unpicklable
   callable, fork failure, broken pool) silently falls back to serial
   execution; task exceptions still propagate.
3. **Observability** -- per-task wall-clock timings are collected in
   :class:`MapStats` either way, so benchmarks can report speedups and
   stragglers without instrumenting the task function.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..obs import OBS

#: Exceptions that mean "the pool could not run this work" rather than
#: "the task failed" -- these trigger the serial fallback.  AttributeError
#: is how CPython reports an unpicklable local/lambda callable; a task
#: that genuinely raises one of these still propagates, because the
#: serial retry re-raises it.
_POOL_FAILURES = (
    pickle.PicklingError,
    BrokenProcessPool,
    OSError,
    ImportError,
    AttributeError,
)


class BrokenPoolError(RuntimeError):
    """A worker process died mid-map; names the in-flight chunk.

    A bare ``BrokenProcessPool`` says nothing about *what* was running
    when the worker died (OOM kill, segfault in an extension, ...).
    This wrapper pins the earliest affected chunk: its index, the item
    slice it covered, and a repr preview of those items -- enough to
    reproduce the kill serially.  Counted under
    ``runtime.parallel.broken_pool``; with ``serial_fallback=False`` it
    propagates to the caller instead of retrying serially.
    """

    def __init__(self, chunk_index: int, item_range: tuple[int, int], items):
        self.chunk_index = chunk_index
        self.item_range = item_range
        self.items_preview = [repr(item)[:80] for item in items[:3]]
        lo, hi = item_range
        preview = ", ".join(self.items_preview)
        if hi - lo > len(self.items_preview):
            preview += ", ..."
        super().__init__(
            f"process pool broke while executing chunk {chunk_index} "
            f"(items {lo}:{hi}): [{preview}]"
        )

#: Per-process shared payload installed by ``ParallelMap.map(shared=...)``.
_SHARED: object | None = None


def _set_shared(payload: object | None) -> None:
    """Install the shared payload (pool-worker initializer target)."""
    global _SHARED
    _SHARED = payload


def get_shared() -> object | None:
    """The payload passed as ``ParallelMap.map(..., shared=...)``, if any.

    Workers read it instead of receiving a copy per chunk: process
    dispatch ships it exactly once per worker (via the pool
    initializer), and serial execution installs it around the map call.
    Returns None outside a ``shared=`` map.
    """
    return _SHARED


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers=`` argument to an effective worker count.

    ``None`` and ``0`` mean "use every available core"; negative values
    are rejected; anything is capped to the host's usable CPU count
    (oversubscribing processes only adds overhead).
    """
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    if workers is None or workers == 0:
        return available
    if workers < 0:
        raise ConfigurationError("workers cannot be negative")
    return min(int(workers), max(available, 1))


@dataclass
class MapStats:
    """Timing record of one :meth:`ParallelMap.map` call."""

    #: ``"serial"`` or ``"process"``.
    mode: str = "serial"
    #: Effective worker count used for dispatch.
    workers: int = 1
    #: Number of tasks executed.
    n_tasks: int = 0
    #: Wall-clock of the whole map call (s).
    elapsed: float = 0.0
    #: Per-task wall-clock durations (s), in input order.
    task_durations: list[float] = field(default_factory=list)
    #: Why a process-pool dispatch fell back to serial, if it did.
    fallback_reason: str | None = None
    #: Task count of each dispatched chunk, in submission order.
    chunk_sizes: list[int] = field(default_factory=list)
    #: Worker-side wall-clock of each chunk (s) -- measured inside the
    #: worker process, so it excludes pickling and queue latency.
    chunk_durations: list[float] = field(default_factory=list)
    #: Pid that executed each chunk (the coordinator's own for serial).
    chunk_pids: list[int] = field(default_factory=list)

    @property
    def total_task_time(self) -> float:
        """Sum of per-task durations -- the serial-equivalent work (s)."""
        return sum(self.task_durations)

    @property
    def mean_task_time(self) -> float:
        """Average per-task duration (s)."""
        if not self.task_durations:
            return 0.0
        return self.total_task_time / len(self.task_durations)

    @property
    def parallel_efficiency(self) -> float:
        """``total_task_time / (workers * elapsed)`` -- 1.0 is perfect."""
        if self.elapsed <= 0 or self.workers <= 0:
            return 0.0
        return self.total_task_time / (self.workers * self.elapsed)

    def _chunk_percentile(self, p: float) -> float:
        """Nearest-rank percentile of worker-side chunk wall times (s)."""
        if not self.chunk_durations:
            return 0.0
        ordered = sorted(self.chunk_durations)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def chunk_latency_p50(self) -> float:
        """Median worker-side chunk wall time (s)."""
        return self._chunk_percentile(50)

    @property
    def chunk_latency_p95(self) -> float:
        """95th-percentile worker-side chunk wall time (s) -- stragglers."""
        return self._chunk_percentile(95)

    def summary(self) -> str:
        """One-line human-readable digest for benchmark output."""
        text = (
            f"{self.mode} x{self.workers}: {self.n_tasks} tasks in "
            f"{self.elapsed:.3f}s (task mean {1e3 * self.mean_task_time:.2f}ms,"
            f" efficiency {self.parallel_efficiency:.2f})"
        )
        if self.chunk_durations:
            text += (
                f" [chunks {len(self.chunk_durations)}, p50 "
                f"{1e3 * self.chunk_latency_p50:.2f}ms, p95 "
                f"{1e3 * self.chunk_latency_p95:.2f}ms]"
            )
        return text


@dataclass
class ChunkResult:
    """Worker-side record of one executed chunk.

    Carries the results plus the worker's own telemetry -- wall time,
    pid, and (when the coordinator asked for tracing) the worker's
    finished spans as plain dicts, ready for
    :meth:`~repro.obs.tracer.Tracer.adopt`.
    """

    results: list
    task_durations: list[float]
    #: Worker-side wall-clock of the whole chunk (s).
    elapsed: float
    pid: int
    #: Exported span dicts from the worker's local tracer (may be empty).
    spans: list[dict] = field(default_factory=list)
    #: The worker's metrics snapshot, merged into the coordinator registry.
    metrics: dict = field(default_factory=dict)


def _run_chunk(
    fn: Callable,
    items: Sequence,
    chunk_index: int = 0,
    trace_pid: int | None = None,
) -> ChunkResult:
    """Worker-side chunk execution; returns a :class:`ChunkResult`.

    Module-level so it pickles; ``fn`` itself must also be picklable for
    process dispatch (module-level functions and ``functools.partial``
    of them are; lambdas are not and trigger the serial fallback).

    ``trace_pid`` is the coordinator's pid when its telemetry is on.  A
    *worker* process (pid differs -- under ``fork`` it still inherits a
    copy of the coordinator's switchboard, so the pid is the reliable
    discriminator) runs the chunk under an isolated local tracer +
    registry and ships the finished spans and metric snapshot back with
    the results; the coordinator re-parents the spans under its own
    ``parallel.map`` span.  In-process execution (serial mode) spans
    directly onto the live tracer instead.
    """
    from ..obs import observing

    def execute() -> tuple[list, list[float]]:
        results = []
        durations = []
        for item in items:
            t0 = time.perf_counter()
            results.append(fn(item))
            durations.append(time.perf_counter() - t0)
        return results, durations

    t_chunk = time.perf_counter()
    pid = os.getpid()
    if trace_pid is not None and pid != trace_pid:
        with observing() as obs:
            with obs.span(
                "parallel.chunk", chunk_index=chunk_index, n_items=len(items)
            ):
                results, durations = execute()
            spans = obs.tracer.export()
            metrics = obs.metrics.snapshot()
        return ChunkResult(
            results, durations, time.perf_counter() - t_chunk, pid,
            spans, metrics,
        )
    if trace_pid is not None:
        with OBS.span(
            "parallel.chunk", chunk_index=chunk_index, n_items=len(items)
        ):
            results, durations = execute()
    else:
        results, durations = execute()
    return ChunkResult(results, durations, time.perf_counter() - t_chunk, pid)


def _chunk_slices(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Deterministic contiguous chunking: ``n_chunks`` near-equal slices."""
    n_chunks = max(min(n_chunks, n_items), 1)
    base, extra = divmod(n_items, n_chunks)
    slices = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        slices.append((start, start + size))
        start += size
    return slices


class ParallelMap:
    """Ordered map over items, optionally fanned out across processes.

    Parameters
    ----------
    workers:
        Process count.  ``<= 1`` executes inline (serial); ``None``/``0``
        uses every available core.
    chunks_per_worker:
        Dispatch granularity: each worker receives about this many
        contiguous chunks.  More chunks smooth out stragglers at the
        cost of more pickling round-trips.
    serial_fallback:
        When True (the default) any pool-infrastructure failure retries
        the whole map serially.  False propagates the failure instead
        -- a dead worker surfaces as :class:`BrokenPoolError` naming
        the in-flight chunk, which callers like long experiment runs
        prefer over silently re-running hours of work inline.

    After each :meth:`map` call, :attr:`stats` describes what happened.
    """

    def __init__(
        self,
        workers: int | None = 1,
        chunks_per_worker: int = 4,
        serial_fallback: bool = True,
    ) -> None:
        if chunks_per_worker < 1:
            raise ConfigurationError("chunks_per_worker must be >= 1")
        self.workers = resolve_workers(workers)
        self.chunks_per_worker = chunks_per_worker
        self.serial_fallback = serial_fallback
        self.stats = MapStats()

    # -- execution ---------------------------------------------------------

    def _record_chunk(self, chunk: ChunkResult) -> None:
        stats = self.stats
        stats.task_durations.extend(chunk.task_durations)
        stats.chunk_sizes.append(len(chunk.task_durations))
        stats.chunk_durations.append(chunk.elapsed)
        stats.chunk_pids.append(chunk.pid)
        if OBS.enabled:
            OBS.metrics.histogram("runtime.parallel.chunk_seconds").observe(
                chunk.elapsed
            )
            OBS.metrics.counter("runtime.parallel.chunks_completed").inc()
            if chunk.spans:
                OBS.tracer.adopt(chunk.spans)
            if chunk.metrics:
                OBS.metrics.merge(chunk.metrics)

    def _drop_partial_records(self, exc: BaseException) -> None:
        """Reset chunk telemetry of a failed dispatch before the retry."""
        self.stats.fallback_reason = f"{type(exc).__name__}: {exc}"
        self.stats.task_durations = []
        self.stats.chunk_sizes = []
        self.stats.chunk_durations = []
        self.stats.chunk_pids = []

    def _map_serial(self, fn: Callable, items: Sequence) -> list:
        chunk = _run_chunk(
            fn, items, trace_pid=os.getpid() if OBS.enabled else None
        )
        self.stats.mode = "serial"
        self.stats.workers = 1
        self._record_chunk(chunk)
        return chunk.results

    def _map_processes(
        self, fn: Callable, items: Sequence, shared: object | None = None
    ) -> list:
        slices = _chunk_slices(len(items), self.workers * self.chunks_per_worker)
        trace_pid = os.getpid() if OBS.enabled else None
        pool_kwargs = {}
        if shared is not None:
            # The payload rides the pool initializer: pickled once per
            # worker process instead of once per submitted chunk.
            pool_kwargs = {"initializer": _set_shared, "initargs": (shared,)}
        with ProcessPoolExecutor(max_workers=self.workers, **pool_kwargs) as pool:
            futures = [
                pool.submit(_run_chunk, fn, items[lo:hi], i, trace_pid)
                for i, (lo, hi) in enumerate(slices)
            ]
            # The in-flight gauge lets a live flusher show how much of
            # the fan-out is still outstanding mid-map.
            if trace_pid is not None:
                OBS.metrics.gauge("runtime.parallel.inflight_chunks").set(
                    len(futures)
                )
            results: list = []
            # Collect in submission order: ordering is positional, and a
            # failure surfaces on the earliest affected chunk.
            chunks = []
            for i, future in enumerate(futures):
                try:
                    chunks.append(future.result())
                except BrokenProcessPool as exc:
                    lo, hi = slices[i]
                    raise BrokenPoolError(i, (lo, hi), items[lo:hi]) from exc
                if trace_pid is not None:
                    OBS.metrics.gauge("runtime.parallel.inflight_chunks").set(
                        len(futures) - len(chunks)
                    )
        self.stats.mode = "process"
        self.stats.workers = self.workers
        for chunk in chunks:
            results.extend(chunk.results)
            self._record_chunk(chunk)
        return results

    def map(
        self, fn: Callable, items: Iterable, shared: object | None = None
    ) -> list:
        """Apply ``fn`` to every item; results in input order.

        Bit-identical to ``[fn(x) for x in items]``: the pool only
        changes *where* each call runs.  Exceptions raised by ``fn``
        propagate; pool-infrastructure failures retry the whole map
        serially (recorded in ``stats.fallback_reason``).

        ``shared`` is an optional read-only payload made available to
        ``fn`` through :func:`get_shared` -- shipped once per worker
        process rather than once per chunk (and simply installed
        in-process for serial execution).
        """
        item_list = list(items)
        self.stats = MapStats(n_tasks=len(item_list))
        t0 = time.perf_counter()
        previous_shared = get_shared()
        _set_shared(shared)
        try:
            with OBS.span(
                "parallel.map", n_tasks=len(item_list), workers=self.workers
            ) as span:
                if not item_list:
                    results = []
                elif self.workers <= 1:
                    results = self._map_serial(fn, item_list)
                else:
                    try:
                        results = self._map_processes(fn, item_list, shared)
                    except BrokenPoolError as exc:
                        if OBS.enabled:
                            OBS.metrics.counter(
                                "runtime.parallel.broken_pool"
                            ).inc()
                        if not self.serial_fallback:
                            raise
                        self._drop_partial_records(exc)
                        results = self._map_serial(fn, item_list)
                    except _POOL_FAILURES as exc:
                        if not self.serial_fallback:
                            raise
                        self._drop_partial_records(exc)
                        results = self._map_serial(fn, item_list)
        finally:
            _set_shared(previous_shared)
        self.stats.n_tasks = len(item_list)
        self.stats.elapsed = time.perf_counter() - t0
        if OBS.enabled:
            span.set(mode=self.stats.mode, elapsed_s=self.stats.elapsed)
            OBS.metrics.counter(
                "runtime.parallel.maps", mode=self.stats.mode
            ).inc()
            if self.stats.fallback_reason is not None:
                OBS.metrics.counter("runtime.parallel.fallbacks").inc()
        return results


def parallel_map(
    fn: Callable, items: Iterable, workers: int | None = 1
) -> list:
    """One-shot convenience wrapper around :class:`ParallelMap`."""
    return ParallelMap(workers=workers).map(fn, items)
