#!/usr/bin/env python3
"""Quickstart: the paper's core idea in thirty lines.

A task slot of the DVD camcorder idles for 20 s at 0.2 A and then writes
for 10 s at 1.2 A.  How should the fuel-cell output be set?

We compare the three policies of the paper's Section 3.2 and solve the
fuel-optimal setting with the library's closed-form optimizer.
"""

from repro import LinearSystemEfficiency, SlotProblem, solve_slot

# The paper's measured FC system: eta_s = 0.45 - 0.13 * IF, 12 V rail,
# load-following range [0.1, 1.2] A, Ifc = 0.32*IF/eta_s (Eq. 4).
model = LinearSystemEfficiency()

# One task slot: 20 s idle @ 0.2 A, 10 s active @ 1.2 A, 200 A-s storage.
problem = SlotProblem(
    t_idle=20.0, t_active=10.0, i_idle=0.2, i_active=1.2, c_max=200.0
)

# (a) Conv-DPM: the FC is pinned at the top of its range.
fuel_conv = model.fuel_charge(model.if_max, 30.0)

# (b) ASAP-DPM: the FC follows the load exactly.
fuel_asap = model.fuel_charge(0.2, 20.0) + model.fuel_charge(1.2, 10.0)

# (c) FC-DPM: the fuel-optimal flat output (Lagrange optimum, Eq. 11).
solution = solve_slot(problem, model)

print("Fuel consumption for one task slot (stack A-s):")
print(f"  (a) conv-dpm : {fuel_conv:6.2f}")
print(f"  (b) asap-dpm : {fuel_asap:6.2f}")
print(f"  (c) fc-dpm   : {solution.fuel:6.2f}  "
      f"(flat IF = {solution.if_idle:.3f} A, Ifc = {solution.ifc_idle:.3f} A)")
print()
print(f"fc-dpm saves {100 * (1 - solution.fuel / fuel_asap):.1f}% vs asap-dpm "
      "(paper: 15.9%)")
print(f"fc-dpm saves {100 * (1 - solution.fuel / fuel_conv):.1f}% vs conv-dpm")
