"""Paper-constant bundle tests."""

import pytest

from repro.config import (
    PAPER,
    CamcorderConstants,
    Experiment1Constants,
    Experiment2Constants,
    FCSystemConstants,
)
from repro.errors import ConfigurationError


class TestFCSystemConstants:
    def test_paper_defaults(self):
        fc = FCSystemConstants()
        assert fc.v_out == 12.0
        assert fc.open_circuit_voltage == 18.2
        assert fc.n_cells == 20
        assert (fc.alpha, fc.beta) == (0.45, 0.13)
        assert (fc.if_min, fc.if_max) == (0.1, 1.2)

    def test_k_fuel_is_0_32(self):
        # VF / zeta = 12 / 37.5 = 0.32 (Eq. 4's coefficient).
        assert FCSystemConstants().k_fuel == pytest.approx(0.32)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ConfigurationError):
            FCSystemConstants(alpha=-0.1)

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            FCSystemConstants(if_min=1.2, if_max=0.1)

    def test_rejects_nonpositive_efficiency_at_range_top(self):
        with pytest.raises(ConfigurationError):
            FCSystemConstants(alpha=0.1, beta=0.13)  # 0.1 - 0.156 < 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FCSystemConstants().alpha = 0.5


class TestCamcorderConstants:
    def test_active_length_is_3_03_seconds(self):
        # 16 MB buffer / 5.28 MB/s writer = 3.03 s (paper Section 5.1).
        assert CamcorderConstants().active_length == pytest.approx(3.0303, abs=1e-3)

    def test_break_even_time_is_1_second(self):
        assert CamcorderConstants().break_even_time == pytest.approx(1.0)

    def test_power_ordering(self):
        c = CamcorderConstants()
        assert c.p_run > c.p_standby > c.p_sleep > 0


class TestExperimentConstants:
    def test_exp1_duration_28_minutes(self):
        assert Experiment1Constants().duration_s == 28 * 60

    def test_exp1_storage_is_6_As(self):
        assert Experiment1Constants().storage_capacity == pytest.approx(6.0)

    def test_exp2_ranges(self):
        e = Experiment2Constants()
        assert (e.idle_low, e.idle_high) == (5.0, 25.0)
        assert (e.active_low, e.active_high) == (2.0, 4.0)
        assert (e.p_active_low, e.p_active_high) == (12.0, 16.0)
        assert e.break_even_time == 10.0
        assert e.rho == e.sigma == 0.5

    def test_paper_bundle(self):
        assert PAPER.fc.alpha == 0.45
        assert PAPER.camcorder.p_run == 14.65
        assert PAPER.exp2.i_active_estimate == 1.2
