"""Benchmark-harness configuration.

Every bench regenerates one table or figure of the paper, prints the
rows/series the paper reports (visible with ``pytest benchmarks/ -s``,
and always written to ``benchmarks/out/``), and times the underlying
computation with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    """Directory where benches drop their regenerated tables/series."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(out_dir):
    """Print a report block and mirror it to benchmarks/out/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
