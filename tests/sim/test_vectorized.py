"""Vectorized kernel tests: scalar equivalence, routing, batch API.

The contract under test is absolute: for every eligible configuration
``simulate_fast`` returns a result ``==`` (every field, no tolerances)
to ``SlotSimulator.run`` and leaves the manager in the same end state;
everything else must *route* to the scalar simulator, never silently
diverge.
"""

import pytest

from repro.core.baselines import StaticController
from repro.core.manager import PowerManager
from repro.devices.camcorder import camcorder_device_params
from repro.errors import ConfigurationError, DepletedError, SimulationError
from repro.fuelcell.fuel import FuelTank, GibbsFuelModel
from repro.scenario import get_scenario, scenario_names
from repro.sim.slotsim import SimulationResult, SlotSimulator
from repro.sim.vectorized import (
    fast_path_ineligibility,
    simulate_batch,
    simulate_fast,
)
from repro.workload.mpeg import generate_mpeg_trace


def _source_state(mgr):
    """The result-relevant end state of a manager's power source."""
    src = mgr.source
    state = {
        "total_fuel": src.total_fuel,
        "total_time": src.total_time,
        "total_load_charge": src.total_load_charge,
        "total_delivered_charge": src.total_delivered_charge,
        "storage_charge": src.storage.charge,
        "bled": src.storage.bled_charge,
        "deficit": src.storage.deficit_charge,
    }
    if hasattr(src, "fc"):
        state["tank_consumed"] = src.fc.tank.consumed
    return state


def _run_both(name: str, seed: int):
    """(scalar outcome, fast outcome) for one registry scenario.

    Each outcome is either ``("ok", result, end_state)`` or
    ``("err", type, message)`` -- raising configurations must raise
    identically on both paths.
    """
    sc = get_scenario(name)
    outcomes = []
    for fast in (False, True):
        mgr = sc.build_manager()
        trace = sc.build_trace(seed)
        try:
            if fast:
                result = simulate_fast(mgr, trace)
            else:
                result = SlotSimulator(mgr).run(trace)
        except SimulationError as exc:
            outcomes.append(("err", type(exc), str(exc)))
        else:
            outcomes.append(("ok", result, _source_state(mgr)))
    return outcomes


class TestRegistryEquivalence:
    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("seed", [0, 2007])
    def test_every_scenario_matches_scalar(self, name, seed):
        scalar, fast = _run_both(name, seed)
        assert fast == scalar

    def test_static_controller_takes_fast_path(self):
        dev = camcorder_device_params()
        trace = generate_mpeg_trace(seed=11)

        def build():
            mgr = PowerManager.conv_dpm(
                dev, storage_capacity=6.0, storage_initial=3.0
            )
            mgr.controller = StaticController(mgr.controller.model, 0.6)
            return mgr

        assert fast_path_ineligibility(build()) is None
        m_fast, m_scalar = build(), build()
        assert simulate_fast(m_fast, trace) == SlotSimulator(m_scalar).run(trace)
        assert _source_state(m_fast) == _source_state(m_scalar)

    def test_max_segment_parity(self):
        dev = camcorder_device_params()
        trace = generate_mpeg_trace(seed=3)
        m1 = PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        m2 = PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        r_fast = simulate_fast(m1, trace, max_segment=5.0)
        r_scalar = SlotSimulator(m2, max_segment=5.0).run(trace)
        assert r_fast == r_scalar
        assert _source_state(m1) == _source_state(m2)


class TestRouting:
    def test_conv_dpm_is_eligible(self):
        mgr = get_scenario("exp1-conv-dpm").build_manager()
        assert fast_path_ineligibility(mgr) is None

    def test_fc_dpm_is_eligible(self):
        # Scan-compiled since kernel round 2: the paper's FC-DPM wiring
        # (exponential predictors, shared idle predictor) runs natively.
        mgr = get_scenario("exp1-fc-dpm").build_manager()
        assert fast_path_ineligibility(mgr) is None

    def test_fc_dpm_custom_predictor_routes_to_scalar(self):
        from repro.prediction import LastValuePredictor

        mgr = get_scenario("exp1-fc-dpm").build_manager()
        mgr.controller.active_length_predictor = LastValuePredictor()
        reason = fast_path_ineligibility(mgr)
        assert reason is not None and "controller predictors" in reason

    def test_fc_dpm_double_fed_predictor_routes_to_scalar(self):
        # Sharing the idle predictor while the controller also observes
        # it feeds two observations per slot -- no scan form.
        mgr = get_scenario("exp1-fc-dpm").build_manager()
        ctrl = mgr.controller
        if getattr(mgr.policy, "predictor", None) is not ctrl.idle_length_predictor:
            mgr.policy.predictor = ctrl.idle_length_predictor
        ctrl.observes_idle = True
        reason = fast_path_ineligibility(mgr)
        assert reason is not None and "controller/policy coupling" in reason

    def test_record_routes_to_scalar(self):
        mgr = get_scenario("exp1-conv-dpm").build_manager()
        reason = fast_path_ineligibility(mgr, record=True)
        assert reason is not None and "record" in reason.lower()

    def test_record_history_routes_to_scalar(self):
        mgr = get_scenario("exp1-conv-dpm").build_manager()
        mgr.source.record_history = True
        reason = fast_path_ineligibility(mgr)
        assert reason is not None and "record_history" in reason

    @pytest.mark.parametrize("name", ["exp1-battery", "exp1-fc-dpm-multistack"])
    def test_non_reference_sources_route_to_scalar(self, name):
        mgr = get_scenario(name).build_manager()
        reason = fast_path_ineligibility(mgr)
        assert reason is not None and "no array kernel" in reason

    def test_adaptive_fallback_is_exact(self):
        # The fallback is the scalar simulator itself, so equality is
        # trivially guaranteed -- this pins the routing, not the math.
        sc = get_scenario("exp1-fc-dpm")
        m1, m2 = sc.build_manager(), sc.build_manager()
        trace = sc.build_trace(5)
        assert simulate_fast(m1, trace) == SlotSimulator(m2).run(trace)
        assert _source_state(m1) == _source_state(m2)

    def test_record_fallback_is_exact(self):
        from dataclasses import replace

        sc = get_scenario("exp1-asap-dpm")
        m1, m2 = sc.build_manager(), sc.build_manager()
        trace = sc.build_trace(5)
        r_fast = simulate_fast(m1, trace, record=True)
        r_scalar = SlotSimulator(m2, record=True).run(trace)
        # Recorder has identity equality; compare its capture separately.
        assert replace(r_fast, recorder=None) == replace(r_scalar, recorder=None)
        assert r_fast.recorder is not None
        assert r_fast.recorder.samples == r_scalar.recorder.samples


class TestSolverCacheParity:
    def test_fc_fast_path_shares_memo_entries(self):
        # The scan-compiled pass must pose byte-identical SlotProblems:
        # a sweep mixing fast and scalar fc runs then shares one memo
        # population instead of solving everything twice.
        from repro.runtime import memo

        sc = get_scenario("exp1-fc-dpm")
        trace = sc.build_trace(0)
        try:
            memo.clear_solver_cache()
            SlotSimulator(sc.build_manager()).run(trace)
            scalar_keys = set(memo._CACHE)
            memo.clear_solver_cache()
            simulate_fast(sc.build_manager(), trace)
            fast_keys = set(memo._CACHE)
            assert fast_keys == scalar_keys
            assert scalar_keys  # non-vacuous: fc-dpm solves every slot
        finally:
            memo.clear_solver_cache()


class TestErrorParity:
    def test_depleted_tank_matches_scalar(self):
        # A tank too small for the run must raise the *same*
        # DepletedError from both paths (the kernel reruns the scalar
        # simulator on a snapshot to get the per-segment context).
        def build():
            mgr = get_scenario("exp1-asap-dpm").build_manager()
            mgr.source.fc.tank = FuelTank(capacity=50.0, model=GibbsFuelModel())
            return mgr

        trace = get_scenario("exp1-asap-dpm").build_trace(0)
        with pytest.raises(DepletedError) as scalar_exc:
            SlotSimulator(build()).run(trace)
        with pytest.raises(DepletedError) as fast_exc:
            simulate_fast(build(), trace)
        assert str(fast_exc.value) == str(scalar_exc.value)

    def test_deficit_guard_matches_scalar(self):
        # static:0.4 undersupplies the Exp-1 load enough to trip the
        # 5% deficit guard; both paths must report it identically.
        excs = []
        for fast in (False, True):
            with pytest.raises(SimulationError) as exc:
                simulate_batch("exp1-conv-dpm", [0], ["static:0.4"], fast=fast)
            excs.append((type(exc.value), str(exc.value)))
        assert excs[0] == excs[1]


class TestBatch:
    def test_fast_equals_scalar_including_adaptive(self):
        sc = get_scenario("exp1-conv-dpm")
        seeds = [0, 1, 2]
        policies = ["conv-dpm", "asap-dpm", "fc-dpm", "static:0.8"]
        scalar = simulate_batch(sc, seeds, policies, fast=False)
        fast = simulate_batch(sc, seeds, policies, fast=True)
        assert fast == scalar
        assert sorted(fast) == seeds
        for seed in seeds:
            assert list(fast[seed]) == policies
            for result in fast[seed].values():
                assert isinstance(result, SimulationResult)

    def test_parallel_workers_match_serial_and_leak_nothing(self, monkeypatch):
        # Both the dispatch decision and ParallelMap's pool sizing cap
        # at the usable core count, so force two workers to exercise
        # the real multi-process shared-memory path on any host.
        import glob

        from repro.runtime import parallel as parallel_mod
        from repro.runtime.shm import SHM_PREFIX
        from repro.sim import vectorized as vectorized_mod

        monkeypatch.setattr(parallel_mod, "resolve_workers", lambda w: 2)
        monkeypatch.setattr(vectorized_mod, "resolve_workers", lambda w: 2)

        before = set(glob.glob(f"/dev/shm/{SHM_PREFIX}*"))
        sc = get_scenario("exp1-conv-dpm")
        seeds = [0, 1, 2, 3]
        policies = ["conv-dpm", "asap-dpm", "fc-dpm", "static:0.8"]
        serial = simulate_batch(sc, seeds, policies, fast=True, workers=1)
        parallel = simulate_batch(sc, seeds, policies, fast=True, workers=2)
        assert parallel == serial
        # Segment hygiene: the batch's shared plans must be unlinked.
        assert set(glob.glob(f"/dev/shm/{SHM_PREFIX}*")) == before

    def test_accepts_scenario_name_string(self):
        by_name = simulate_batch("exp1-conv-dpm", [7])
        by_obj = simulate_batch(get_scenario("exp1-conv-dpm"), [7])
        assert by_name == by_obj
        assert list(by_name[7]) == ["conv-dpm"]

    def test_prebuilt_traces_are_used(self):
        sc = get_scenario("exp1-conv-dpm")
        traces = {3: sc.build_trace(3)}
        assert simulate_batch(sc, [3], traces=traces) == simulate_batch(sc, [3])

    def test_rejects_empty_seeds(self):
        with pytest.raises(ConfigurationError, match="at least one seed"):
            simulate_batch("exp1-conv-dpm", [])

    def test_rejects_empty_policies(self):
        with pytest.raises(ConfigurationError, match="at least one policy"):
            simulate_batch("exp1-conv-dpm", [0], [])

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            simulate_batch("exp1-conv-dpm", [0], ["turbo-dpm"])

    def test_rejects_bad_static_spec(self):
        with pytest.raises(ConfigurationError, match="static"):
            simulate_batch("exp1-conv-dpm", [0], ["static:lots"])

    def test_rejects_non_string_spec(self):
        with pytest.raises(ConfigurationError, match="must be a string"):
            simulate_batch("exp1-conv-dpm", [0], [0.8])
