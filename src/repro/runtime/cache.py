"""On-disk result cache for whole experiments.

``fcdpm`` subcommands and the benchmark suite recompute identical
tables and sweeps over and over; a full report is seconds of compute
for bytes of output.  :class:`ResultCache` stores any picklable result
under a key that is a stable hash of

* a namespace (the experiment name),
* the experiment parameters (canonical JSON, so dict ordering and
  int/float spelling cannot change the key), and
* a fingerprint of the installed ``repro`` source code,

so results are transparently invalidated the moment either the
parameters *or the code* change.  Corrupt or unreadable entries are
treated as misses -- the cache can always be deleted wholesale.

The location defaults to ``~/.cache/fcdpm`` and can be redirected with
the ``FCDPM_CACHE_DIR`` environment variable; the CLI exposes
``--no-cache`` to bypass it entirely.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
import time
from collections.abc import Callable
from pathlib import Path
from typing import Any

from ..obs import OBS

_FINGERPRINT: str | None = None

logger = logging.getLogger("repro.runtime.cache")


def code_fingerprint(root: Path | str | None = None) -> str:
    """Stable hash of every ``*.py`` file under ``root``.

    ``root`` defaults to the installed ``repro`` package tree (cached
    per process -- the common case hashes the source exactly once).
    Adding, removing, or editing any module under the root changes the
    fingerprint and therefore every cache key -- the "code version"
    part of the invalidation story.
    """
    global _FINGERPRINT
    if root is None and _FINGERPRINT is not None:
        return _FINGERPRINT
    package_root = (
        Path(__file__).resolve().parent.parent if root is None else Path(root)
    )
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    fingerprint = digest.hexdigest()[:16]
    if root is None:
        _FINGERPRINT = fingerprint
    return fingerprint


def _canonical(params: Any) -> str:
    """Canonical JSON for hashing: sorted keys, no whitespace drift."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=repr)


def cache_key(namespace: str, params: Any, fingerprint: str | None = None) -> str:
    """Hex key for (namespace, params, code version)."""
    fp = code_fingerprint() if fingerprint is None else fingerprint
    payload = f"{namespace}\x00{_canonical(params)}\x00{fp}"
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def default_cache_dir() -> Path:
    """``$FCDPM_CACHE_DIR`` if set, else ``~/.cache/fcdpm``."""
    env = os.environ.get("FCDPM_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "fcdpm"


class ResultCache:
    """Pickle-per-entry directory cache with atomic writes.

    Parameters
    ----------
    root:
        Cache directory (created lazily).  ``None`` uses
        :func:`default_cache_dir`.
    enabled:
        When False every lookup misses and nothing is written -- the
        ``--no-cache`` escape hatch without branching at call sites.
    """

    def __init__(self, root: Path | str | None = None, enabled: bool = True) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- primitive get/put -------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Load a cached value, or ``default`` on any kind of miss."""
        if not self.enabled:
            return default
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            if OBS.enabled:
                OBS.metrics.counter("runtime.cache.misses").inc()
            return default
        self.hits += 1
        if OBS.enabled:
            OBS.metrics.counter("runtime.cache.hits").inc()
        return value

    def put(self, key: str, value: Any) -> None:
        """Store a value atomically (rename over a temp file).

        Best-effort: an unwritable directory or unpicklable value makes
        this a no-op -- the cache must never break the computation.
        """
        if not self.enabled:
            return
        tmp = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except (OSError, pickle.PickleError, AttributeError, TypeError):
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def contains(self, key: str) -> bool:
        """True when an entry exists (without loading it)."""
        return self.enabled and self._path(key).exists()

    # -- invalidation telemetry --------------------------------------------

    def _sidecar_path(self, namespace: str, params: Any) -> Path:
        """Fingerprint sidecar keyed by (namespace, params) *only*.

        The entry key folds the code fingerprint in, so after a source
        edit the old entry simply stops being found.  The sidecar
        remembers which fingerprint last produced a value for these
        parameters, which is what lets a miss be classified as a *code
        invalidation* rather than a first-ever computation.
        """
        payload = f"{namespace}\x00{_canonical(params)}"
        stem = hashlib.sha256(payload.encode()).hexdigest()[:32]
        return self.root / f"{stem}.fp"

    def _note_invalidation(self, namespace: str, params: Any, fp: str) -> None:
        """Detect a fingerprint change; emit the ``cache.invalidated`` event.

        Best-effort file IO: telemetry must never break the computation.
        """
        sidecar = self._sidecar_path(namespace, params)
        try:
            old_fp = sidecar.read_text().strip()
        except OSError:
            old_fp = ""
        if old_fp and old_fp != fp:
            logger.info(
                "cache.invalidated namespace=%s old_fingerprint=%s "
                "new_fingerprint=%s",
                namespace,
                old_fp,
                fp,
            )
            if OBS.enabled:
                OBS.metrics.counter(
                    "runtime.cache.invalidated", namespace=namespace
                ).inc()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            sidecar.write_text(fp + "\n")
        except OSError:
            pass

    def _write_entry_manifest(
        self, key: str, namespace: str, params: Any, fp: str, wall_s: float
    ) -> None:
        """Drop a provenance manifest next to a freshly computed entry."""
        from ..obs import build_manifest

        try:
            manifest = build_manifest(
                namespace,
                scenario=None,
                params=json.loads(_canonical(params)),
                seeds=[],
                workers=0,
                route="cached",
                wall_s=wall_s,
                cpu_s=0.0,
                metrics={},
                fingerprint=fp,
            )
            manifest.write(self.root / f"{key}.manifest.json")
        except (OSError, TypeError, ValueError):
            pass

    # -- the convenience everyone actually uses ----------------------------

    def cached(self, namespace: str, params: Any, compute: Callable[[], Any]) -> Any:
        """Return the cached result of ``compute()`` for these parameters.

        The key covers the code fingerprint, so a source change
        recomputes; when that happens a structured ``cache.invalidated``
        event is logged (old vs new fingerprint) and counted.  Every
        fresh computation also writes a ``<key>.manifest.json``
        provenance record beside the pickle.
        """
        fp = code_fingerprint()
        key = cache_key(namespace, params, fp)
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            if self.enabled:
                self._note_invalidation(namespace, params, fp)
            t0 = time.perf_counter()
            value = compute()
            wall_s = time.perf_counter() - t0
            self.put(key, value)
            if self.enabled:
                self._write_entry_manifest(key, namespace, params, fp, wall_s)
        return value

    def clear(self) -> int:
        """Delete every entry (and its sidecars); returns entries removed."""
        if not self.root.exists():
            return 0
        n = 0
        for path in self.root.glob("*.pkl"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        for pattern in ("*.fp", "*.manifest.json"):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        return n
