"""Receding-horizon controller tests."""

import pytest

from repro.core.manager import PowerManager
from repro.core.receding import RecedingHorizonController
from repro.devices.camcorder import camcorder_device_params
from repro.dpm.predictive import PredictiveShutdownPolicy
from repro.errors import ConfigurationError
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.prediction.exponential import ExponentialAveragePredictor
from repro.sim.slotsim import SlotSimulator
from repro.workload.mpeg import generate_mpeg_trace


@pytest.fixture(scope="module")
def model():
    return LinearSystemEfficiency()


def mpc_manager(horizon: int, dev) -> PowerManager:
    model = LinearSystemEfficiency()
    idle_pred = ExponentialAveragePredictor(factor=0.5)
    mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
    mgr.name = f"mpc-h{horizon}"
    mgr.policy = PredictiveShutdownPolicy(dev, idle_pred)
    controller = RecedingHorizonController(
        model, horizon=horizon, idle_length_predictor=idle_pred
    )
    controller.observes_idle = False
    mgr.controller = controller
    return mgr


class TestConstruction:
    def test_rejects_zero_horizon(self, model):
        with pytest.raises(ConfigurationError):
            RecedingHorizonController(model, horizon=0)

    def test_default_predictors(self, model):
        c = RecedingHorizonController(model)
        assert isinstance(c.idle_length_predictor, ExponentialAveragePredictor)


class TestPlanning:
    def test_outputs_within_range(self, model):
        dev = camcorder_device_params()
        trace = generate_mpeg_trace(duration_s=300.0, seed=11)
        mgr = mpc_manager(3, dev)
        result = SlotSimulator(mgr, record=True).run(trace)
        _, values = result.recorder.step_series("i_f")
        assert values.min() >= 0.1 - 1e-9
        assert values.max() <= 1.2 + 1e-9

    def test_plans_every_slot_without_fallback(self):
        dev = camcorder_device_params()
        trace = generate_mpeg_trace(duration_s=300.0, seed=11)
        mgr = mpc_manager(3, dev)
        result = SlotSimulator(mgr).run(trace)
        controller = mgr.controller
        assert controller.n_plans == result.n_slots
        assert controller.n_fallbacks == 0

    def test_no_deficit(self):
        dev = camcorder_device_params()
        trace = generate_mpeg_trace(duration_s=600.0, seed=12)
        result = SlotSimulator(mpc_manager(4, dev)).run(trace)
        assert result.deficit == 0.0


class TestFuelHeadroom:
    @pytest.fixture(scope="class")
    def fuels(self):
        dev = camcorder_device_params()
        trace = generate_mpeg_trace(seed=2007)
        out = {
            "fc-dpm": SlotSimulator(
                PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
            )
            .run(trace)
            .fuel
        }
        for h in (1, 2, 4):
            out[f"mpc-h{h}"] = SlotSimulator(mpc_manager(h, dev)).run(trace).fuel
        return out

    def test_mpc_at_least_matches_fc_dpm(self, fuels):
        # The per-slot stability constraint leaves headroom: every MPC
        # horizon should do no worse than FC-DPM on this workload.
        for h in (1, 2, 4):
            assert fuels[f"mpc-h{h}"] <= fuels["fc-dpm"] * 1.01

    def test_multi_slot_lookahead_helps(self, fuels):
        assert fuels["mpc-h2"] <= fuels["mpc-h1"] + 1.0

    def test_reset(self, model):
        c = RecedingHorizonController(model, horizon=2)
        c.start_run(3.0, 6.0)
        from repro.core.baselines import SlotActuals, SlotStart

        c.on_idle_start(SlotStart(0, False, 0.2, 3.0))
        c.on_slot_end(SlotActuals(0, 10.0, 3.0, 1.2))
        c.reset()
        assert c.n_plans == 0
        assert c._i_active_n == 0
