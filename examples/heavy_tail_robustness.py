#!/usr/bin/env python3
"""Heavy-tailed workloads: where the paper's FC-DPM needs a guard.

The paper evaluates FC-DPM on workloads whose idle periods span 8-20 s;
its policy retargets the FC only at power-state transitions.  On a WLAN
interface serving interactive traffic (session gaps of minutes), a
10x-underpredicted idle leaves the FC over-delivering into a full
storage: the surplus burns in the bleeder and FC-DPM loses to plain
load-following.

This example reproduces the failure and the fix -- periodic re-decision
points (``max_segment``) plus the controller's storage-saturation guard
-- and shows the paper's original experiments are untouched by either.

Run:  python examples/heavy_tail_robustness.py
"""

from repro.analysis.report import format_table
from repro.core.manager import PowerManager
from repro.devices.camcorder import camcorder_device_params
from repro.sim import SlotSimulator
from repro.workload import generate_mpeg_trace
from repro.workload.wlan import generate_wlan_trace


def run_policies(trace, max_segment):
    dev = camcorder_device_params()
    out = {}
    for maker in (PowerManager.conv_dpm, PowerManager.asap_dpm,
                  PowerManager.fc_dpm):
        mgr = maker(dev, storage_capacity=6.0, storage_initial=3.0)
        out[mgr.name] = SlotSimulator(mgr, max_segment=max_segment).run(trace)
    return out


def show(title, results):
    rows = [["policy", "fuel (A-s)", "bled (A-s)"]]
    for name, r in results.items():
        rows.append([name, f"{r.fuel:.1f}", f"{r.bled:.1f}"])
    print(format_table(rows, title=title))
    print()


def main() -> None:
    wlan = generate_wlan_trace(duration_s=1200.0, seed=5)
    idles = sorted(s.t_idle for s in wlan)
    print(f"WLAN trace: {len(wlan)} slots, idle median {idles[len(idles)//2]:.1f} s, "
          f"max {idles[-1]:.0f} s (heavy-tailed)\n")

    show("WLAN, paper-faithful (retarget only at transitions)",
         run_policies(wlan, max_segment=None))
    show("WLAN, with 5 s re-decision points + saturation guard",
         run_policies(wlan, max_segment=5.0))

    mpeg = generate_mpeg_trace()
    show("paper's MPEG trace, paper-faithful", run_policies(mpeg, None))
    show("paper's MPEG trace, with re-decision points",
         run_policies(mpeg, 5.0))

    print("reading: on the paper's own workload the guard is inert; on")
    print("heavy tails it is the difference between losing and beating")
    print("ASAP-DPM. Online FC control should re-check the storage on a")
    print("timescale comparable to the break-even time, not only at")
    print("power-state transitions.")


if __name__ == "__main__":
    main()
