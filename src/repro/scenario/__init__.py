"""Declarative scenario layer: named, serializable experiment configs.

One :class:`~repro.scenario.spec.Scenario` names a complete experimental
setup (workload + device + policy + power source + constants) and builds
the live objects on demand; the registry holds the paper's canonical
configurations plus pluggable-source variants.
"""

from .spec import DeviceSpec, PolicySpec, Scenario, SourceSpec, WorkloadSpec
from .registry import (
    experiment_scenarios,
    get_scenario,
    register,
    scenario_names,
)

__all__ = [
    "Scenario",
    "WorkloadSpec",
    "DeviceSpec",
    "PolicySpec",
    "SourceSpec",
    "register",
    "get_scenario",
    "scenario_names",
    "experiment_scenarios",
]
