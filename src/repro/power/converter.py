"""DC-DC converter efficiency models.

The paper's FC system regulates the stack output to a 12 V rail through a
**PWM-PFM** converter: pulse-width modulation at high output current,
switching to pulse-frequency modulation at light load, which keeps the
conversion efficiency high (~85 %) across the whole load range (paper
Section 2.1).  A plain PWM converter, by contrast, loses efficiency
rapidly at light load because its fixed switching losses dominate --
that difference is what separates Fig. 3(b) from Fig. 3(c).

Loss model: a converter delivering output power ``P_out`` draws

    P_in = (P_out + P_fixed) / eta_conduction

where ``P_fixed`` lumps gate-drive and switching losses (load
independent for PWM; roughly proportional to load for PFM, which scales
its switching frequency with the load).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigurationError, RangeError


class ConverterModel(ABC):
    """Maps converter output power to input power (both in watts)."""

    @abstractmethod
    def input_power(self, output_power: float) -> float:
        """Power drawn from the source to deliver ``output_power``."""

    def efficiency(self, output_power: float) -> float:
        """Conversion efficiency at ``output_power`` (0 for zero load)."""
        if output_power < 0:
            raise RangeError("output power cannot be negative")
        if output_power == 0:
            return 0.0
        return output_power / self.input_power(output_power)


@dataclass(frozen=True)
class IdealConverter(ConverterModel):
    """Lossless converter -- useful as a limiting case in tests."""

    def input_power(self, output_power: float) -> float:
        if output_power < 0:
            raise RangeError("output power cannot be negative")
        return output_power


@dataclass(frozen=True)
class PWMConverter(ConverterModel):
    """Fixed-frequency PWM converter.

    Attributes
    ----------
    eta_conduction:
        Conduction-path efficiency at heavy load.
    p_fixed:
        Load-independent switching + control loss (W).  This is what
        makes light-load efficiency poor.
    """

    eta_conduction: float = 0.96
    p_fixed: float = 0.30

    def __post_init__(self) -> None:
        if not 0 < self.eta_conduction <= 1:
            raise ConfigurationError("eta_conduction must be in (0, 1]")
        if self.p_fixed < 0:
            raise ConfigurationError("fixed loss cannot be negative")

    def input_power(self, output_power: float) -> float:
        if output_power < 0:
            raise RangeError("output power cannot be negative")
        if output_power == 0:
            return self.p_fixed / self.eta_conduction
        return (output_power + self.p_fixed) / self.eta_conduction


@dataclass(frozen=True)
class PFMConverter(ConverterModel):
    """Pulse-frequency-modulation converter.

    Switching frequency scales with load, so switching loss is (to first
    order) proportional to output power; efficiency is nearly flat even
    at light load, at the cost of a slightly lower heavy-load efficiency.
    """

    eta_flat: float = 0.94

    def __post_init__(self) -> None:
        if not 0 < self.eta_flat <= 1:
            raise ConfigurationError("eta_flat must be in (0, 1]")

    def input_power(self, output_power: float) -> float:
        if output_power < 0:
            raise RangeError("output power cannot be negative")
        return output_power / self.eta_flat


@dataclass(frozen=True)
class PWMPFMConverter(ConverterModel):
    """Dual-mode converter: PFM at light load, PWM at heavy load.

    The mode switch happens where the two loss models cross, keeping the
    better efficiency on both sides -- this is the "very high efficiency
    (~85 %) for the entire load range" converter of paper Section 2.1.
    """

    pwm: PWMConverter = PWMConverter()
    pfm: PFMConverter = PFMConverter()

    def input_power(self, output_power: float) -> float:
        if output_power < 0:
            raise RangeError("output power cannot be negative")
        return min(
            self.pwm.input_power(output_power), self.pfm.input_power(output_power)
        )

    def mode(self, output_power: float) -> str:
        """Which modulation scheme is active at this load: 'pwm' or 'pfm'."""
        if self.pfm.input_power(output_power) <= self.pwm.input_power(output_power):
            return "pfm"
        return "pwm"
