"""Load profiles: task-slot traces and their generators."""

from .trace import TaskSlot, LoadTrace
from .builder import TraceBuilder
from .mpeg import MpegEncoderModel, generate_mpeg_trace
from .wlan import WlanModel, generate_wlan_trace
from .synthetic import (
    uniform_slots,
    exponential_slots,
    pareto_slots,
    bursty_slots,
    experiment2_trace,
)

__all__ = [
    "TaskSlot",
    "TraceBuilder",
    "LoadTrace",
    "MpegEncoderModel",
    "generate_mpeg_trace",
    "WlanModel",
    "generate_wlan_trace",
    "uniform_slots",
    "exponential_slots",
    "pareto_slots",
    "bursty_slots",
    "experiment2_trace",
]
