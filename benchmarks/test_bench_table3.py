"""Table 3 bench: Experiment 2 (randomized synthetic workload)."""

from repro.analysis.report import format_table
from repro.analysis.tables import table3


def test_bench_table3_experiment2(benchmark, emit):
    result = benchmark.pedantic(table3, rounds=1, iterations=1)

    report = "\n".join(
        [
            "TABLE 3 -- normalized fuel consumption, Experiment 2",
            "idle U[5,25] s, active U[2,4] s, P_active U[12,16] W,",
            "tauPD = tauWU = 1 s @1.2 A, Tbe = 10 s, rho = sigma = 0.5",
            format_table(result.rows()),
            f"FC-DPM saves {100 * result.fc_vs_asap_saving:.1f}% fuel vs "
            f"ASAP-DPM (paper: 15.5%)",
        ]
    )
    emit("table3", report)

    n = result.normalized
    assert n["fc-dpm"] < n["asap-dpm"] < n["conv-dpm"]
    assert abs(n["asap-dpm"] - 0.491) < 0.08
    assert abs(n["fc-dpm"] - 0.415) < 0.08
