"""Declarative experiment specifications and their unit-task expansion.

An :class:`ExperimentSpec` names a whole comparison study -- one
scenario crossed with seeds, policies and parameter ablations -- as a
frozen, JSON-serializable value.  ``expand()`` turns it into a
deterministic list of :class:`UnitTask` cells: the same spec always
yields the same tasks in the same order, on any host, which is what
makes sharded dispatch (``--shard i/n``) and crash-safe resume
coherent across machines.

Identity is content-based: :attr:`ExperimentSpec.content_hash` reuses
:func:`repro.runtime.cache.cache_key` over the canonical ``to_dict``
form (with a constant fingerprint, so the hash names the *experiment*,
not the code version), and every unit task keys its result in the
:class:`~repro.runtime.cache.ResultCache` by its own canonical
parameters -- two experiments sharing a cell share the cached result.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError

#: Spec-hash "fingerprint": constant on purpose, so the content hash
#: identifies the experiment definition independent of the code version
#: (per-task cache keys still fold the real code fingerprint in).
_SPEC_FINGERPRINT = "exp-spec-v1"

#: Sweep shorthand: sweep name -> (task kind, ablation knob name).
#: Mirrors ``fcdpm sweep`` names; the thin clients in
#: :mod:`repro.analysis.sweep` build their specs through this table.
SWEEP_KINDS = {
    "storage": ("sweep.storage", "capacity"),
    "beta": ("sweep.beta", "beta"),
    "recharge": ("sweep.recharge", "threshold"),
    "predictor": ("sweep.predictor", "predictor"),
}


def _freeze_params(params) -> tuple[tuple[str, Any], ...]:
    """Normalize a params mapping/pair-sequence to sorted key order."""
    if params is None:
        return ()
    pairs = list(params.items()) if isinstance(params, dict) else list(params)
    out = []
    for pair in pairs:
        key, value = pair
        if isinstance(value, list):
            value = tuple(value)
        out.append((str(key), value))
    names = [k for k, _ in out]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate param names in {names}")
    return tuple(sorted(out))


@dataclass(frozen=True)
class UnitTask:
    """One executable cell of an experiment.

    ``task_id`` is positional (stable across resumes and shards);
    :meth:`cache_params` is identity-carrying -- it deliberately leaves
    the position *out*, so the same (kind, scenario, seed, policy,
    params) cell computed by any experiment lands on the same
    :class:`~repro.runtime.cache.ResultCache` entry.
    """

    index: int
    task_id: str
    kind: str
    scenario: str | dict | None
    seed: int
    policy: str | None
    params: tuple[tuple[str, Any], ...] = ()
    fast: bool = False

    def param(self, name: str, default: Any = None) -> Any:
        """Look up one ablation-knob assignment."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def cache_namespace(self) -> str:
        """Cache namespace: one per task kind."""
        return f"exp/{self.kind}"

    def cache_params(self) -> dict[str, Any]:
        """Canonical identity dict -- what keys the cached result."""
        return {
            "kind": self.kind,
            "scenario": self.scenario,
            "seed": self.seed,
            "policy": self.policy,
            "params": dict(self.params),
            "fast": self.fast,
        }

    def cache_key(self, fingerprint: str | None = None) -> str:
        """The task's :class:`ResultCache` key under ``fingerprint``."""
        from ..runtime.cache import cache_key

        return cache_key(self.cache_namespace(), self.cache_params(), fingerprint)

    def label(self) -> str:
        """Short human-readable cell description for errors and logs."""
        bits = [self.kind, f"seed={self.seed}"]
        if self.policy is not None:
            bits.append(f"policy={self.policy}")
        bits.extend(f"{k}={v!r}" for k, v in self.params)
        return " ".join(bits)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, declarative scenario x seeds x policies x ablations study.

    Parameters
    ----------
    name:
        Experiment name -- the handle ``fcdpm exp run/status/...`` use.
    kind:
        Task kind from :data:`repro.exp.tasks.TASK_KINDS`; decides what
        one cell *does* (run a scenario policy cell, one sweep point,
        one per-seed table reproduction, ...).
    scenario:
        Registered scenario name, a full ``Scenario.to_dict()`` dict,
        or ``None`` for kinds with a built-in default configuration
        (the sweep kinds keep the historical Experiment-1 base).
    seeds:
        Trace seeds, duplicate-free (mirrors ``simulate_batch``).
    policies:
        ``simulate_batch`` policy specs; empty means "the scenario's
        own policy" (one cell per seed).
    ablations:
        ``((knob, (value, ...)), ...)`` -- the cross product of all
        knob value lists is expanded, slowest-varying first.
    fast:
        Route eligible cells through the vectorized kernel.
    """

    name: str
    kind: str
    scenario: str | dict | None = None
    seeds: tuple[int, ...] = (2007,)
    policies: tuple[str, ...] = ()
    ablations: tuple[tuple[str, tuple], ...] = ()
    fast: bool = False
    description: str = ""
    #: Free-form extra parameters forwarded to every unit task.
    extra: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("experiment needs a non-empty name")
        if not self.kind:
            raise ConfigurationError("experiment needs a task kind")
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ConfigurationError("experiment needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ConfigurationError(f"duplicate seeds in {seeds}")
        object.__setattr__(self, "seeds", seeds)
        policies = tuple(self.policies)
        if len(set(policies)) != len(policies):
            raise ConfigurationError(f"duplicate policies in {policies}")
        object.__setattr__(self, "policies", policies)
        ablations = tuple(
            (str(knob), tuple(values)) for knob, values in self.ablations
        )
        knob_names = [knob for knob, _ in ablations]
        if len(set(knob_names)) != len(knob_names):
            raise ConfigurationError(f"duplicate ablation knobs in {knob_names}")
        for knob, values in ablations:
            if not values:
                raise ConfigurationError(f"ablation {knob!r} has no values")
        object.__setattr__(self, "ablations", ablations)
        object.__setattr__(self, "extra", _freeze_params(self.extra))

    # -- identity ----------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        """Cell count without materializing the expansion."""
        n = len(self.seeds) * max(len(self.policies), 1)
        for _, values in self.ablations:
            n *= len(values)
        return n

    @property
    def content_hash(self) -> str:
        """Canonical content hash of the definition (code-independent)."""
        from ..runtime.cache import cache_key

        return cache_key("exp.spec", self.to_dict(), fingerprint=_SPEC_FINGERPRINT)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (stable keys; JSON-serializable)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "scenario": self.scenario,
            "seeds": list(self.seeds),
            "policies": list(self.policies),
            "ablations": [[knob, list(values)] for knob, values in self.ablations],
            "fast": self.fast,
            "description": self.description,
            "extra": [list(pair) for pair in self.extra],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            kind=data["kind"],
            scenario=data.get("scenario"),
            seeds=tuple(data.get("seeds", (2007,))),
            policies=tuple(data.get("policies", ())),
            ablations=tuple(
                (knob, tuple(values)) for knob, values in data.get("ablations", ())
            ),
            fast=data.get("fast", False),
            description=data.get("description", ""),
            extra=tuple((k, v) for k, v in data.get("extra", ())),
        )

    # -- expansion ---------------------------------------------------------

    def expand(self) -> list[UnitTask]:
        """The deterministic unit-task list.

        Nesting order: ablation combinations (slowest, in declaration
        order), then seeds, then policies -- so a single-knob sweep
        enumerates its values in order, and a (seeds x policies) batch
        keeps every seed's policies adjacent.  ``task_id`` is derived
        from the position alone.
        """
        policies: tuple[str | None, ...] = self.policies or (None,)
        knob_names = [knob for knob, _ in self.ablations]
        value_lists = [values for _, values in self.ablations]
        tasks: list[UnitTask] = []
        index = 0
        for combo in itertools.product(*value_lists):
            params = tuple(zip(knob_names, combo)) + self.extra
            for seed in self.seeds:
                for policy in policies:
                    tasks.append(
                        UnitTask(
                            index=index,
                            task_id=f"t{index:05d}",
                            kind=self.kind,
                            scenario=self.scenario,
                            seed=seed,
                            policy=policy,
                            params=params,
                            fast=self.fast,
                        )
                    )
                    index += 1
        return tasks


def _scenario_field(scenario) -> str | dict | None:
    """Normalize a sweep-style ``scenario`` argument for a spec field."""
    if scenario is None or isinstance(scenario, (str, dict)):
        return scenario
    to_dict = getattr(scenario, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    raise ConfigurationError(
        f"scenario must be a name, dict or Scenario, got {type(scenario).__name__}"
    )


def sweep_spec(
    sweep: str,
    values,
    seed: int = 2007,
    scenario=None,
    fast: bool = False,
) -> ExperimentSpec:
    """Spec for one ablation sweep (see :data:`SWEEP_KINDS`)."""
    if sweep not in SWEEP_KINDS:
        raise ConfigurationError(
            f"unknown sweep {sweep!r}; pick from {sorted(SWEEP_KINDS)}"
        )
    kind, knob = SWEEP_KINDS[sweep]
    return ExperimentSpec(
        name=f"sweep-{sweep}",
        kind=kind,
        scenario=_scenario_field(scenario),
        seeds=(int(seed),),
        ablations=((knob, tuple(values)),),
        fast=fast,
    )


def seed_study_spec(kind: str, seeds, name: str | None = None) -> ExperimentSpec:
    """Spec for a per-seed stability study (``run_seeds`` replacement)."""
    return ExperimentSpec(
        name=name or f"seed-study-{kind}",
        kind=kind,
        seeds=tuple(int(s) for s in seeds),
    )


def scenario_batch_spec(
    name: str,
    scenario,
    seeds,
    policies=(),
    fast: bool = True,
) -> ExperimentSpec:
    """Spec for a (scenario x seeds x policies) Monte-Carlo batch."""
    return ExperimentSpec(
        name=name,
        kind="scenario",
        scenario=_scenario_field(scenario),
        seeds=tuple(int(s) for s in seeds),
        policies=tuple(policies),
        fast=fast,
    )
