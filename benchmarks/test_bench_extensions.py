"""Benches for the prior-work extensions (refs [6, 7, 10, 11]).

Not figures of the DAC'07 paper itself, but the results its argument
stands on: DVS-for-fuel (DAC'06 [10]), discrete FC levels (ISLPED'06
[11]), and idle aggregation (refs [6, 7]).
"""

from repro.analysis.report import format_table
from repro.core.multilevel import default_levels, quantization_loss_curve
from repro.core.manager import PowerManager
from repro.core.setting import SlotProblem
from repro.devices.camcorder import randomized_device_params
from repro.dpm.procrastination import procrastinate
from repro.dvs.cpu import CPUModel
from repro.dvs.policies import (
    EnergyMinimalDVS,
    FuelAwareDVS,
    JointLevelDVS,
    NoDVSPolicy,
)
from repro.dvs.sim import DVSSimulator
from repro.dvs.tasks import mpeg_frames
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.sim.slotsim import SlotSimulator
from repro.workload.trace import LoadTrace, TaskSlot


def test_bench_dvs_policies(benchmark, emit):
    """Ref [10]: DVS on the hybrid source -- fuel per speed policy."""
    cpu = CPUModel.xscale_like()
    model = LinearSystemEfficiency()
    frames = mpeg_frames(n_frames=150, seed=7)

    def run_all():
        out = {}
        for name, policy in (
            ("no-dvs", NoDVSPolicy(cpu)),
            ("energy-min", EnergyMinimalDVS(cpu)),
            ("fuel-aware", FuelAwareDVS(cpu, model)),
            ("joint-8-levels", JointLevelDVS(cpu, model, default_levels(model, 8))),
        ):
            out[name] = DVSSimulator(policy, model, name=name).run(frames)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [["policy", "fuel (A-s)", "device charge (A-s)", "mean f (GHz)"]]
    for name, r in results.items():
        rows.append(
            [name, f"{r.fuel:.2f}", f"{r.device_charge:.2f}",
             f"{r.mean_frequency:.2f}"]
        )
    emit(
        "ext_dvs",
        "PRIOR WORK [10] -- DVS policies on the FC hybrid source\n"
        + format_table(rows)
        + "\nreading: DVS cuts fuel ~25%+ vs race-to-idle; with ample "
        "storage the fuel-optimal FC setting makes energy-min DVS "
        "fuel-optimal too (Jensen equality).",
    )
    assert results["energy-min"].fuel < results["no-dvs"].fuel
    assert results["fuel-aware"].fuel <= results["energy-min"].fuel + 1e-6


def test_bench_discrete_fc_levels(benchmark, emit):
    """Ref [11]: fuel penalty of a finite FC level lattice."""
    model = LinearSystemEfficiency()
    problem = SlotProblem(t_idle=20, t_active=10, i_idle=0.2, i_active=1.2,
                          c_ini=3.0, c_end=3.0, c_max=200.0)
    curve = benchmark(quantization_loss_curve, problem, model)
    rows = [["FC output levels (nested lattice)", "extra fuel (A-s)", "% of slot fuel"]]
    for n, penalty in curve.items():
        rows.append([str(n), f"{penalty:.3f}", f"{100 * penalty / 13.45:.2f}"])
    emit(
        "ext_levels",
        "PRIOR WORK [11] -- quantization penalty vs number of FC levels\n"
        + format_table(rows)
        + "\nreading: a handful of calibrated set-points is enough; the "
        "penalty collapses well below 1% of slot fuel (nested 2**k + 1 "
        "lattices, so the curve is monotone).",
    )
    penalties = list(curve.values())
    assert all(b <= a + 1e-9 for a, b in zip(penalties, penalties[1:]))


def test_bench_procrastination(benchmark, emit):
    """Refs [6, 7]: idle aggregation unlocks sleep below break-even."""
    dev = randomized_device_params()  # Tbe = 10 s
    choppy = LoadTrace([TaskSlot(4.0, 2.0, 1.1)] * 40, name="choppy")

    def run_pair():
        def run(trace):
            mgr = PowerManager.fc_dpm(
                dev, storage_capacity=6.0, storage_initial=3.0,
                active_current_estimate=1.2,
            )
            return SlotSimulator(mgr).run(trace)

        merged, report = procrastinate(choppy, max_defer=16.0)
        return run(choppy), run(merged), report

    baseline, improved, report = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    rows = [
        ["schedule", "slots", "mean idle (s)", "sleeps", "fuel (A-s)"],
        ["original", str(baseline.n_slots), f"{choppy.mean_idle():.1f}",
         str(baseline.n_sleeps), f"{baseline.fuel:.2f}"],
        ["procrastinated", str(improved.n_slots),
         f"{report.merged_mean_idle:.1f}", str(improved.n_sleeps),
         f"{improved.fuel:.2f}"],
    ]
    emit(
        "ext_procrastination",
        "PRIOR WORK [6, 7] -- idle aggregation by task procrastination\n"
        + format_table(rows)
        + f"\nfuel saving: {100 * (1 - improved.fuel / baseline.fuel):.1f}% "
        "(4 s gaps cannot host a 10 s-break-even sleep; merged 12+ s gaps can)",
    )
    assert improved.fuel < baseline.fuel
    assert baseline.n_sleeps == 0 and improved.n_sleeps > 0
