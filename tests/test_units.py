"""Unit-conversion and constant tests."""

import math

import pytest

from repro import units


class TestTimeConversions:
    def test_minutes(self):
        assert units.minutes(28) == 28 * 60

    def test_hours(self):
        assert units.hours(2) == 7200

    def test_to_minutes_roundtrip(self):
        assert units.to_minutes(units.minutes(13.5)) == pytest.approx(13.5)


class TestChargeConversions:
    def test_mAh(self):
        assert units.mAh(1000) == pytest.approx(3600.0)

    def test_mA_min_paper_supercap(self):
        # The paper's "100 mA-min" storage element is 6 A-s.
        assert units.mA_min(100) == pytest.approx(6.0)

    def test_capacitor_charge(self):
        assert units.capacitor_charge(1.0, 12.0) == pytest.approx(12.0)

    def test_capacitor_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            units.capacitor_charge(-1.0, 12.0)
        with pytest.raises(ValueError):
            units.capacitor_charge(1.0, -12.0)


class TestPowerCurrent:
    def test_power_to_current_camcorder_run(self):
        # RUN mode: 14.65 W on the 12 V rail.
        assert units.power_to_current(14.65, 12.0) == pytest.approx(1.2208, abs=1e-4)

    def test_current_to_power_roundtrip(self):
        i = units.power_to_current(4.84, 12.0)
        assert units.current_to_power(i, 12.0) == pytest.approx(4.84)

    def test_zero_rail_rejected(self):
        with pytest.raises(ValueError):
            units.power_to_current(10.0, 0.0)
        with pytest.raises(ValueError):
            units.current_to_power(1.0, -5.0)


class TestElectrochemistry:
    def test_ideal_cell_voltage_about_1_23(self):
        # HHV thermodynamic cell voltage is ~1.23 V.
        assert units.IDEAL_CELL_VOLTAGE == pytest.approx(1.229, abs=0.01)

    def test_coulombs_to_mol_h2(self):
        # 2 F coulombs of charge = 1 mol H2.
        assert units.coulombs_to_mol_h2(2 * units.FARADAY) == pytest.approx(1.0)

    def test_mol_to_norm_liters(self):
        assert units.mol_h2_to_norm_liters(1.0) == pytest.approx(22.414)


class TestIsclose:
    def test_equal(self):
        assert units.isclose(1.0, 1.0 + 1e-13)

    def test_not_equal(self):
        assert not units.isclose(1.0, 1.001)

    def test_absolute_tolerance_near_zero(self):
        assert units.isclose(0.0, 1e-13)
        assert not math.isnan(units.IDEAL_CELL_VOLTAGE)
