"""Legacy setuptools shim.

All metadata lives in pyproject.toml; this file only enables
``pip install -e .`` on environments without the ``wheel`` package
(pip falls back to ``setup.py develop`` when no [build-system] table is
declared).
"""

from setuptools import setup

setup()
