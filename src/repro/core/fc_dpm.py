"""Algorithm FC-DPM: the paper's online fuel-efficient controller (Fig. 5).

At every idle-period start the controller:

1. takes the DPM decision (SLEEP vs STANDBY) made by the device policy
   -- whose predictor supplies ``T'_i`` (Eq. 14);
2. predicts the coming active period: length ``T'_a`` by the same
   exponential filter (Eq. 15) and current ``I'_ld,a`` as the running
   mean of past active currents (or a fixed estimate, as in Exp. 2);
3. solves the Section-3 slot problem with ``Cini`` = current storage
   charge and ``Cend`` = the storage level at the start of the run
   (``Cini(1)``, the paper's stability target), including the
   sleep-transition overheads when the device will sleep;
4. holds ``IF,i`` through the idle period.

When the active period actually starts, the controller re-solves for
``IF,a`` using the actual ``Ta`` and ``Ild,a`` (paper Section 4.2) and
the actual storage level, and holds that through the active period.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..fuelcell.efficiency import SystemEfficiencyModel
from ..prediction.base import Predictor
from ..prediction.exponential import ExponentialAveragePredictor
from ..runtime.memo import solve_slot_memo
from .baselines import SegmentContext, SlotActuals, SlotStart, SourceController
from .setting import SlotProblem


class FCDPMController(SourceController):
    """The paper's fuel-efficient FC output controller.

    Parameters
    ----------
    model:
        System-efficiency model (fuel map + load-following range).
    active_length_predictor:
        Predictor for ``T'_a``; defaults to the paper's exponential
        average with ``sigma = 0.5``.
    idle_length_predictor:
        Predictor for ``T'_i`` used in the slot problem; defaults to the
        paper's exponential average with ``rho = 0.5``.  (The device's
        DPM policy keeps its own idle predictor for the sleep decision;
        sharing one instance between both is fine and what
        :class:`~repro.core.manager.PowerManager` does by default.)
    active_current_estimate:
        Fixed ``I'_ld,a`` estimate (Exp. 2 uses 1.2 A).  When ``None``
        (Exp. 1 behaviour) the running mean of observed active currents
        is used, falling back to ``fallback_active_current`` before any
        observation.
    device:
        Sleep-transition overheads (``tau_PD``, ``tau_WU``, ``IPD``,
        ``IWU``) for the Section-3.3.2 terms; pass the
        :class:`~repro.devices.device.DeviceParams` of the managed
        device.  ``None`` disables overhead modelling.
    """

    def __init__(
        self,
        model: SystemEfficiencyModel,
        active_length_predictor: Predictor | None = None,
        idle_length_predictor: Predictor | None = None,
        active_current_estimate: float | None = None,
        fallback_active_current: float | None = None,
        device=None,
    ) -> None:
        super().__init__(model)
        self.active_length_predictor = (
            active_length_predictor
            if active_length_predictor is not None
            else ExponentialAveragePredictor(factor=0.5)
        )
        self.idle_length_predictor = (
            idle_length_predictor
            if idle_length_predictor is not None
            else ExponentialAveragePredictor(factor=0.5)
        )
        if active_current_estimate is not None and active_current_estimate < 0:
            raise ConfigurationError("active-current estimate cannot be negative")
        self.active_current_estimate = active_current_estimate
        self.fallback_active_current = (
            fallback_active_current
            if fallback_active_current is not None
            else model.if_max
        )
        self.device = device
        #: Whether on_slot_end feeds the idle predictor.  Set False when
        #: the instance is shared with the device's DPM policy (which
        #: already observes every idle period) to avoid double updates.
        self.observes_idle = True

        self._c_target = 0.0
        self._c_max = float("inf")
        self._if_idle = model.if_min
        self._if_active = model.if_min
        self._active_planned = False
        self._active_current_sum = 0.0
        self._active_current_n = 0
        #: Per-slot solver records, for figures and diagnostics.
        self.solutions = []
        #: Times the storage-saturation guard overrode the idle plan.
        self.n_guard_activations = 0

    # -- helpers -----------------------------------------------------------

    def _estimated_active_current(self) -> float:
        if self.active_current_estimate is not None:
            return self.active_current_estimate
        if self._active_current_n == 0:
            return self.fallback_active_current
        return self._active_current_sum / self._active_current_n

    def _overheads(self, sleeping: bool) -> dict:
        if not sleeping or self.device is None:
            return {}
        return {
            "t_wu": self.device.t_wu,
            "t_pd": self.device.t_pd,
            "i_wu": self.device.i_wu,
            "i_pd": self.device.i_pd,
        }

    # -- SourceController protocol ------------------------------------------

    @property
    def is_trace_functional(self) -> bool:
        """True when the adaptation is scan-compilable (exact types only).

        FC-DPM is *not* a pure function of the trace -- each slot's
        ``SlotProblem`` takes the live storage charge as ``c_ini`` --
        but its only learned inputs (the Eq. 14/15 predictors and the
        active-current running mean) depend on the trace alone, so the
        vectorized kernel can precompute them with
        :func:`~repro.prediction.exponential.exponential_average_scan`
        and run a dedicated sequential pass that poses the exact same
        problems (see ``sim.vectorized._run_fc``).  That requires the
        paper's exponential-average predictors verbatim; any other
        predictor (or a subclass of this controller or of the
        predictor) routes to the scalar simulator.
        """
        return (
            type(self) is FCDPMController
            and type(self.idle_length_predictor) is ExponentialAveragePredictor
            and type(self.active_length_predictor) is ExponentialAveragePredictor
        )

    def start_run(self, storage_charge: float, storage_capacity: float) -> None:
        self._c_target = storage_charge
        self._c_max = storage_capacity

    def on_idle_start(self, start: SlotStart) -> None:
        t_i = max(self.idle_length_predictor.predict(), 1e-6)
        t_a = max(self.active_length_predictor.predict(), 1e-6)
        problem = SlotProblem(
            t_idle=t_i,
            t_active=t_a,
            i_idle=start.i_idle,
            i_active=self._estimated_active_current(),
            c_ini=start.storage_charge,
            c_end=self._c_target,
            c_max=self._c_max,
            sleeping=start.sleeping,
            **self._overheads(start.sleeping),
        )
        # Memoized: sweeps and Monte-Carlo runs re-pose identical slot
        # problems constantly, and the solver is pure (see runtime.memo).
        solution = solve_slot_memo(problem, self.model)
        self.solutions.append(solution)
        self._if_idle = solution.if_idle
        self._if_active = solution.if_active
        self._active_planned = False

    def output(self, ctx: SegmentContext) -> float:
        if ctx.phase == "idle":
            # Storage-saturation guard: when the idle ran far longer
            # than predicted the planned surplus has nowhere to go (the
            # storage is full and the bleeder would burn it) -- or, the
            # other way, a too-low plan has emptied the storage under a
            # higher-than-planned idle load.  Follow the load for the
            # rest of the period; on the paper's 8-20 s workloads the
            # guard fires rarely (a handful of slots per trace) with a
            # negligible fuel effect -- its purpose is heavy-tailed
            # workloads (see tests/workload/test_wlan.py).
            if (
                ctx.storage_charge >= 0.999 * ctx.storage_capacity
                and self._if_idle > ctx.i_load
            ):
                self.n_guard_activations += 1
                return self.model.clamp(ctx.i_load)
            if ctx.storage_charge <= 0.001 * ctx.storage_capacity and (
                self._if_idle < ctx.i_load
            ):
                self.n_guard_activations += 1
                return self.model.clamp(ctx.i_load)
            return self._if_idle
        if not self._active_planned:
            # Re-calculate IF,a from the actual active period (Section
            # 4.2): actual remaining demand and duration are known once
            # the task request arrives.
            if_a = (
                ctx.phase_demand + self._c_target - ctx.storage_charge
            ) / ctx.phase_duration
            self._if_active = self.model.clamp(if_a)
            self._active_planned = True
        return self._if_active

    def on_slot_end(self, actuals: SlotActuals) -> None:
        if self.observes_idle:
            self.idle_length_predictor.observe(actuals.t_idle)
        self.active_length_predictor.observe(actuals.t_active)
        self._active_current_sum += actuals.i_active
        self._active_current_n += 1

    def reset(self) -> None:
        self.idle_length_predictor.reset()
        self.active_length_predictor.reset()
        self._active_current_sum = 0.0
        self._active_current_n = 0
        self._if_idle = self.model.if_min
        self._if_active = self.model.if_min
        self._active_planned = False
        self.solutions.clear()
        self.n_guard_activations = 0

    def commit_kernel_run(
        self,
        n_slots: int,
        *,
        if_idle: float,
        if_active: float,
        active_planned: bool,
        active_current_sum: float,
        active_current_n: int,
        solutions,
        n_guards: int,
        active_commit: tuple,
        idle_commit: tuple | None,
        frozen_idle_estimate: float | None,
    ) -> None:
        """Commit the end state of a compiled kernel pass in one shot.

        The vectorized kernels (``sim.vectorized._run_fc`` per trace,
        ``sim.stacked._run_fc_stacked`` per batch row) integrate a whole
        run without touching the controller, then call this with exactly
        the values the sequential ``on_idle_start`` / ``output`` /
        ``on_slot_end`` protocol would have left behind.  ``*_commit``
        are ``(observations, predictions, final_estimate)`` triples for
        :meth:`~repro.prediction.exponential.ExponentialAveragePredictor
        .commit_scan`; ``idle_commit`` is None when this controller does
        not observe idle lengths, in which case a non-None
        ``frozen_idle_estimate`` replays the frozen predictor's last
        ``predict()`` bookkeeping (None when the device policy already
        feeds the shared predictor).
        """
        if n_slots:
            self._if_idle = if_idle
            self._if_active = if_active
            self._active_planned = active_planned
        self._active_current_sum = active_current_sum
        self._active_current_n = active_current_n
        self.solutions.extend(solutions)
        self.n_guard_activations += n_guards
        self.active_length_predictor.commit_scan(*active_commit)
        if idle_commit is not None:
            self.idle_length_predictor.commit_scan(*idle_commit)
        elif frozen_idle_estimate is not None and n_slots:
            # Frozen predictor: predict() still remembered its estimate.
            self.idle_length_predictor._remember(frozen_idle_estimate)
