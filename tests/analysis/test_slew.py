"""FC slew-rate ablation tests."""

import pytest

from repro.analysis.slew import apply_slew_limit, slew_rate_sweep
from repro.errors import ConfigurationError
from repro.fuelcell.efficiency import LinearSystemEfficiency


@pytest.fixture
def model() -> LinearSystemEfficiency:
    return LinearSystemEfficiency()


#: A Fig-4-like commanded profile: low idle output, high active output.
DURATIONS = [20.0, 10.0, 20.0, 10.0]
COMMANDS = [0.2, 1.2, 0.2, 1.2]


class TestApplySlew:
    def test_infinite_rate_is_identity(self, model):
        result = apply_slew_limit(DURATIONS, COMMANDS, model, slew_rate=1e6)
        assert result.limited_fuel == pytest.approx(result.ideal_fuel, rel=1e-6)
        assert result.charge_error == pytest.approx(0.0, abs=1e-5)

    def test_constant_profile_unaffected(self, model):
        result = apply_slew_limit([30.0], [0.5], model, slew_rate=0.01)
        assert result.n_transitions == 0
        assert result.limited_fuel == pytest.approx(result.ideal_fuel)

    def test_slow_ramp_counts_transitions(self, model):
        result = apply_slew_limit(DURATIONS, COMMANDS, model, slew_rate=0.2)
        assert result.n_transitions == 3  # up, down, up

    def test_up_ramp_underdelivers(self, model):
        result = apply_slew_limit([10.0, 10.0], [0.2, 1.2], model,
                                  slew_rate=0.1)
        # Ramping 1 A at 0.1 A/s takes 10 s: mean level 0.7 instead of 1.2.
        assert result.charge_error == pytest.approx((1.2 - 0.7) * 10.0)
        assert result.worst_transition_shortfall == pytest.approx(5.0)

    def test_balanced_square_wave_nets_to_zero_error(self, model):
        # Equal numbers of up and down ramps: the per-transition
        # shortfalls (+1.0 up, -1.0 down at 0.5 A/s) cancel in net.
        result = apply_slew_limit(
            [10.0, 10.0, 10.0, 10.0, 10.0], [0.2, 1.2, 0.2, 1.2, 0.2],
            model, slew_rate=0.5,
        )
        assert result.n_transitions == 4
        assert result.charge_error == pytest.approx(0.0, abs=1e-9)
        assert result.worst_transition_shortfall == pytest.approx(1.0)

    def test_ramp_fuel_below_ideal_on_up_transitions(self, model):
        # While ramping up, the FC sits below the commanded level: the
        # convex fuel map makes the ramp itself cheaper, but the energy
        # not delivered must come from storage (the charge error).
        result = apply_slew_limit([10.0, 10.0], [0.2, 1.2], model,
                                  slew_rate=0.1)
        assert result.limited_fuel < result.ideal_fuel
        assert result.charge_error > 0

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            apply_slew_limit([1.0], [0.5, 0.6], model, slew_rate=1.0)
        with pytest.raises(ConfigurationError):
            apply_slew_limit([1.0], [0.5], model, slew_rate=0.0)
        with pytest.raises(ConfigurationError):
            apply_slew_limit([-1.0], [0.5], model, slew_rate=1.0)


class TestSweep:
    def test_shortfall_shrinks_with_rate(self, model):
        sweep = slew_rate_sweep(DURATIONS, COMMANDS, model,
                                rates=(0.05, 0.5, 5.0))
        shortfalls = [r.worst_transition_shortfall for r in sweep.values()]
        assert shortfalls == sorted(shortfalls, reverse=True)

    def test_fast_rate_negligible_error(self, model):
        sweep = slew_rate_sweep(DURATIONS, COMMANDS, model, rates=(5.0,))
        assert abs(sweep[5.0].fuel_penalty) < 0.01
        assert sweep[5.0].worst_transition_shortfall < 0.15
