"""Command-line interface: regenerate the paper's experiments.

Installed as ``fcdpm`` by the package.  Subcommands map one-to-one onto
the paper's tables and figures::

    fcdpm table2            # Exp. 1 normalized fuel
    fcdpm table3            # Exp. 2 normalized fuel
    fcdpm fig2              # stack I-V-P curve
    fcdpm fig3              # efficiency curves
    fcdpm fig4              # motivational example
    fcdpm fig7              # current profiles (first 300 s)
    fcdpm sweep <name>      # ablation sweeps
    fcdpm run --scenario X  # run one named scenario (run --list to list)

Global knobs: ``--workers N`` fans seed sweeps and ablations out over N
processes (results stay bit-identical; default 1 = serial) and results
of ``table2``/``table3``/``sweep``/``report`` are served from an
on-disk cache keyed by (parameters, code version) unless ``--no-cache``
is given.  See docs/performance.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis import (
    ascii_plot,
    fig2_stack_iv_curve,
    fig3_efficiency_curves,
    fig4_motivational,
    fig7_current_profiles,
    format_series,
    format_table,
    table2,
    table3,
)
from .analysis.sweep import (
    efficiency_slope_sweep,
    predictor_sweep,
    recharge_threshold_sweep,
    storage_capacity_sweep,
)
from .runtime.cache import ResultCache
from .scenario import experiment_scenarios, get_scenario, scenario_names


def _cache(args: argparse.Namespace) -> ResultCache:
    """The on-disk result cache honoring ``--no-cache``."""
    return ResultCache(enabled=not args.no_cache)


#: Paper-table shorthands accepted wherever a scenario name is:
#: ``fcdpm run --scenario table2`` runs the Exp. 1 FC-DPM configuration.
SCENARIO_ALIASES = {
    "table2": "exp1-fc-dpm",
    "table3": "exp2-fc-dpm",
}


def _resolve_scenario_name(name: str) -> str:
    """Map table shorthands onto registered scenario names."""
    return SCENARIO_ALIASES.get(name, name)


def _workers_arg(value: str) -> int:
    """Validated ``--workers``: a non-negative int (0 = all cores)."""
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"workers must be an integer, got {value!r}")
    if workers < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 = all cores), got {workers}"
        )
    return workers


def _cmd_table(which: str, args: argparse.Namespace) -> int:
    # The cache key names the exact scenarios behind the table, so
    # editing a registered configuration invalidates the entry.
    scenarios = experiment_scenarios("exp1" if which == "table2" else "exp2")
    result = _cache(args).cached(
        which,
        {"seed": args.seed, "scenarios": [sc.to_dict() for sc in scenarios]},
        lambda: table2(seed=args.seed) if which == "table2" else table3(seed=args.seed),
    )
    print(format_table(result.rows(), title=f"{result.name} (normalized fuel)"))
    print(
        f"FC-DPM saves {100 * result.fc_vs_asap_saving:.1f}% fuel vs ASAP-DPM "
        f"(lifetime x{result.fc_vs_asap_lifetime:.2f})"
    )
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    data = fig2_stack_iv_curve()
    print(ascii_plot(data["current"], data["voltage"], title="Fig 2: Vfc vs Ifc"))
    print(ascii_plot(data["current"], data["power"], title="Fig 2: P vs Ifc"))
    print(
        f"max power point: {float(data['p_mpp']):.2f} W "
        f"at {float(data['i_mpp']):.3f} A"
    )
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    data = fig3_efficiency_curves()
    for key in ("stack", "proportional", "onoff", "linear_fit"):
        print(format_series(f"fig3/{key}", data["current"], data[key]))
    print(ascii_plot(data["current"], data["proportional"],
                     title="Fig 3(b): system efficiency (variable-speed fan)"))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    result = fig4_motivational()
    rows = [["setting", "fuel (A-s)"]]
    for name, fuel in result.fuel.items():
        rows.append([name, f"{fuel:.2f}"])
    print(format_table(rows, title="Fig 4 / Section 3.2 motivational example"))
    print(
        f"FC-DPM vs Conv: {100 * result.fc_vs_conv_saving:.1f}% lower; "
        f"vs ASAP: {100 * result.fc_vs_asap_saving:.1f}% lower"
    )
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    data = fig7_current_profiles(seed=args.seed)
    for key in ("load", "asap-dpm", "fc-dpm"):
        times, currents = data[key]
        mids = [(times[i] + times[i + 1]) / 2 for i in range(len(currents))]
        print(ascii_plot(mids, currents, title=f"Fig 7: {key} current (A)"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweeps = {
        "storage": storage_capacity_sweep,
        "predictor": predictor_sweep,
        "beta": efficiency_slope_sweep,
        "recharge": recharge_threshold_sweep,
    }
    if args.name not in sweeps:
        print(f"unknown sweep {args.name!r}; pick from {sorted(sweeps)}")
        return 2
    # workers only changes where points run, never their values, so it
    # is deliberately left out of the cache key.
    result = _cache(args).cached(
        f"sweep/{args.name}",
        {"seed": args.seed},
        lambda: sweeps[args.name](seed=args.seed, workers=args.workers),
    )
    rows = [["parameter", "value"]]
    for key, value in result.items():
        rows.append([str(key), repr(value)])
    print(format_table(rows, title=f"sweep: {args.name}"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.list or args.scenario is None:
        rows = [["scenario", "policy", "workload", "source", "description"]]
        for name in scenario_names():  # already sorted by the registry
            sc = get_scenario(name)
            source = sc.source.kind
            if sc.source.storage_kind != "supercap":
                source += f"/{sc.source.storage_kind}"
            rows.append(
                [name, sc.policy.kind, sc.workload.kind, source, sc.description]
            )
        print(format_table(rows, title="registered scenarios"))
        if args.scenario is None and not args.list:
            print("pick one with: fcdpm run --scenario <name>")
        return 0
    sc = get_scenario(_resolve_scenario_name(args.scenario))

    def compute() -> dict[str, float]:
        manager = sc.build_manager()
        trace = sc.build_trace(args.seed)
        if args.fast:
            from .sim.vectorized import simulate_fast

            result = simulate_fast(manager, trace)
        else:
            from .sim.slotsim import SlotSimulator

            result = SlotSimulator(manager).run(trace)
        return {
            "fuel": result.fuel,
            "load_charge": result.load_charge,
            "bled": result.bled,
            "deficit": result.deficit,
            "duration": result.duration,
            "n_sleeps": float(result.n_sleeps),
            "wakeup_latency": result.wakeup_latency,
        }

    if args.trace is not None:
        metrics = _traced_run(sc, args, compute)
    else:
        # --fast is deliberately NOT part of the cache key: the
        # vectorized kernel is gated on bit-exact equality with the
        # scalar simulator, so both paths must share (and may serve each
        # other's) entries.
        metrics = _cache(args).cached(
            "run", {"seed": args.seed, "scenario": sc.to_dict()}, compute
        )
    rows = [["metric", "value"]]
    for key, value in metrics.items():
        rows.append([key, f"{value:.6g}"])
    print(format_table(rows, title=f"scenario: {sc.name} (seed {args.seed})"))
    if sc.description:
        print(sc.description)
    return 0


def _traced_run(sc, args: argparse.Namespace, compute) -> dict[str, float]:
    """Run ``compute`` under live telemetry; write the trace bundle.

    The result cache is bypassed on purpose -- a cache hit would produce
    a trace with no simulation spans, which defeats the point of asking
    for one.
    """
    from .obs import build_manifest, observing, trace_summary, write_trace_bundle

    with observing() as obs:
        with obs.span(
            "run", scenario=sc.name, seed=args.seed, fast=args.fast
        ):
            t_wall = time.time()
            t_cpu = time.process_time()
            metrics = compute()
            wall_s = time.time() - t_wall
            cpu_s = time.process_time() - t_cpu
        snapshot = obs.metrics.snapshot()
        spans = obs.tracer.export()
    route_counts = {
        key: data.get("value", 0.0)
        for key, data in snapshot.items()
        if key.startswith("sim.route")
    }
    if route_counts:
        route = max(route_counts, key=route_counts.get)
        route = route[route.find("path=") + 5 :].rstrip("}")
    else:
        route = "fast" if args.fast else "scalar"
    manifest = build_manifest(
        f"run:{sc.name}",
        scenario=sc.to_dict(),
        params={"seed": args.seed, "fast": args.fast},
        seeds=[args.seed],
        workers=args.workers,
        route=route,
        wall_s=wall_s,
        cpu_s=cpu_s,
        metrics=snapshot,
    )
    paths = write_trace_bundle(args.trace, spans, snapshot, manifest)
    for name in sorted(paths):
        print(f"wrote {paths[name]}")
    print()
    print(trace_summary(spans, snapshot))
    print()
    return metrics


def _parse_seeds(text: str) -> list[int]:
    """``"0:5"`` (half-open range) or ``"0,1,4"`` (explicit list)."""
    try:
        if ":" in text:
            lo, hi = text.split(":", 1)
            return list(range(int(lo), int(hi)))
        return [int(s) for s in text.split(",") if s.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad seeds {text!r}; expected 'lo:hi' or a comma list"
        ) from None


def _parse_knob_value(text: str):
    """Ablation value: int if it parses, else float, else the string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_ablations(pairs: list[str]) -> list[tuple[str, tuple]]:
    """Each ``--ablate knob=v1,v2`` flag becomes one ablation axis."""
    out = []
    for pair in pairs:
        knob, _, values = pair.partition("=")
        if not knob or not values:
            raise argparse.ArgumentTypeError(
                f"bad ablation {pair!r}; expected knob=v1,v2,..."
            )
        out.append(
            (knob, tuple(_parse_knob_value(v) for v in values.split(",")))
        )
    return out


def _exp_store(args: argparse.Namespace):
    from .exp import ExperimentStore

    return ExperimentStore(args.state_dir)


def _print_exp_status(state) -> None:
    counts = state.counts()
    rows = [["field", "value"], ["status", state.status],
            ["hash", state.spec.content_hash[:16]],
            ["kind", state.spec.kind],
            ["tasks", str(len(state.tasks))]]
    rows += [[status, str(n)] for status, n in counts.items() if n]
    print(format_table(rows, title=f"experiment: {state.spec.name}"))


def _resolve_live(args: argparse.Namespace) -> float | None:
    """``--live`` / ``--live-interval`` / ``$FCDPM_LIVE_INTERVAL``."""
    from .obs.live import live_interval

    if getattr(args, "live_interval", None) is not None:
        return live_interval(args.live_interval)
    if getattr(args, "live", False):
        return live_interval(True)
    return live_interval(None)


def _experiment_payload(
    store, name: str, stall_factor: float, now: float | None = None
) -> dict:
    """Machine-readable status of one experiment + its heartbeats.

    The shape ``exp status --json`` / ``watch --json`` / ``top --json``
    all emit -- the scripting surface for cross-host shard monitoring.
    """
    from .obs.live import heartbeat_age, is_stalled, iter_heartbeats

    state = store.load(name)
    counts = state.counts()
    beats = []
    for shard_label, data in iter_heartbeats(store.experiment_dir(name)):
        beats.append({
            "shard": shard_label,
            "pid": data.get("pid"),
            "host": data.get("host"),
            "phase": data.get("phase", ""),
            "tasks_done": data.get("tasks_done", 0),
            "tasks_failed": data.get("tasks_failed", 0),
            "tasks_total": data.get("tasks_total", 0),
            "task_rate": data.get("task_rate", 0.0),
            "eta_s": data.get("eta_s"),
            "cache_hit_ratio": data.get("cache_hit_ratio"),
            "interval_s": data.get("interval_s"),
            "final": bool(data.get("final")),
            "age_s": heartbeat_age(data, now),
            "stalled": is_stalled(data, now, stall_factor),
        })
    return {
        "name": name,
        "status": state.status,
        "spec_hash": state.spec.content_hash,
        "kind": state.spec.kind,
        "tasks": {"total": len(state.tasks), **counts},
        "heartbeats": beats,
        "stalled": any(b["stalled"] for b in beats),
        "failed": counts.get("failed", 0),
    }


def _payload_exit_code(payloads: list[dict]) -> int:
    """Scripting contract: 4 = stall detected, 1 = failures, 0 = ok."""
    if any(p["stalled"] for p in payloads):
        return 4
    if any(p["failed"] for p in payloads):
        return 1
    return 0


def _fmt_duration(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    seconds = float(seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def _heartbeat_rows(payload: dict) -> list[list[str]]:
    rows = [["shard", "phase", "done", "failed", "total", "rate/s",
             "eta", "age", "state"]]
    for b in payload["heartbeats"]:
        if b["stalled"]:
            state = "STALLED"
        elif b["final"]:
            state = "final"
        else:
            state = "live"
        rows.append([
            b["shard"] or "-", b["phase"] or "-",
            str(b["tasks_done"]), str(b["tasks_failed"]),
            str(b["tasks_total"]),
            f"{b['task_rate']:.2f}",
            _fmt_duration(b["eta_s"]),
            _fmt_duration(b["age_s"]),
            state,
        ])
    return rows


def _render_watch(payload: dict) -> str:
    header = (
        f"experiment: {payload['name']}  status: {payload['status']}  "
        f"kind: {payload['kind']}"
    )
    if not payload["heartbeats"]:
        return header + "\n  (no heartbeats yet -- run with --live)"
    return header + "\n" + format_table(_heartbeat_rows(payload))


def _cmd_exp_watch(args: argparse.Namespace, store) -> int:
    """``fcdpm exp watch NAME`` -- poll heartbeats, render, detect stalls."""
    import json as _json

    def render_once() -> tuple[int, dict]:
        payload = _experiment_payload(store, args.name, args.stall_factor)
        if args.json:
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(_render_watch(payload))
        return _payload_exit_code([payload]), payload

    if args.once:
        return render_once()[0]
    try:
        while True:
            print("\x1b[2J\x1b[H", end="")
            code, payload = render_once()
            done = sum(b["tasks_done"] + b["tasks_failed"]
                       for b in payload["heartbeats"])
            total = sum(b["tasks_total"] for b in payload["heartbeats"])
            if payload["heartbeats"] and all(
                b["final"] for b in payload["heartbeats"]
            ) and (not total or done >= total):
                return code
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """``fcdpm top`` -- every experiment's live heartbeats in one table."""
    import json as _json

    from .errors import ConfigurationError

    store = _exp_store(args)

    def collect() -> list[dict]:
        payloads = []
        for name in store.names():
            try:
                payloads.append(
                    _experiment_payload(store, name, args.stall_factor)
                )
            except ConfigurationError:
                continue
        return payloads

    def render_once() -> int:
        payloads = collect()
        if args.json:
            print(_json.dumps(payloads, indent=2, sort_keys=True))
            return _payload_exit_code(payloads)
        rows = [["experiment", "status", "shard", "phase", "done", "failed",
                 "total", "eta", "age", "state"]]
        for p in payloads:
            if not p["heartbeats"]:
                rows.append([p["name"], p["status"], "-", "-", "-", "-",
                             str(p["tasks"]["total"]), "-", "-", "-"])
                continue
            for b in p["heartbeats"]:
                if b["stalled"]:
                    state = "STALLED"
                elif b["final"]:
                    state = "final"
                else:
                    state = "live"
                rows.append([
                    p["name"], p["status"], b["shard"] or "-",
                    b["phase"] or "-", str(b["tasks_done"]),
                    str(b["tasks_failed"]), str(b["tasks_total"]),
                    _fmt_duration(b["eta_s"]), _fmt_duration(b["age_s"]),
                    state,
                ])
        print(format_table(rows, title=f"experiments under {store.root}"))
        return _payload_exit_code(payloads)

    if args.once:
        return render_once()
    try:
        while True:
            print("\x1b[2J\x1b[H", end="")
            render_once()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_exp(args: argparse.Namespace) -> int:
    """``fcdpm exp define|run|resume|status|merge|report|watch``."""
    from .errors import ConfigurationError
    from .exp import (
        AbortRun,
        ExperimentResults,
        ExperimentSpec,
        run_experiment,
    )

    store = _exp_store(args)
    try:
        if args.action == "define":
            from .exp import SWEEP_KINDS, task_kind_names

            # Accept the sweep shorthands the analysis layer uses
            # ("storage" -> "sweep.storage") and refuse unknown kinds
            # here, at define time, instead of failing every task later.
            kind = SWEEP_KINDS.get(args.kind, (args.kind,))[0]
            if kind not in task_kind_names():
                known = sorted(set(task_kind_names()) | set(SWEEP_KINDS))
                raise ConfigurationError(
                    f"unknown task kind {args.kind!r}; expected one of {known}"
                )
            spec = ExperimentSpec(
                name=args.name,
                kind=kind,
                scenario=args.scenario,
                seeds=tuple(args.seeds if args.seeds is not None else (2007,)),
                policies=tuple(args.policies.split(",")) if args.policies else (),
                ablations=tuple(_parse_ablations(args.ablate or [])),
                fast=args.fast,
            )
            state = store.define(spec, overwrite=args.overwrite)
            print(f"defined {spec.name!r}: {spec.n_tasks} tasks "
                  f"(hash {spec.content_hash[:16]}) under {store.root}")
            _print_exp_status(state)
            return 0
        if args.action == "watch":
            return _cmd_exp_watch(args, store)
        if args.action in ("run", "resume"):
            from contextlib import nullcontext

            live = _resolve_live(args)
            # Live flushing needs a populated registry: wrap the run in
            # an observing() scope so counters/gauges actually record.
            scope = nullcontext()
            if live is not None:
                from .obs import OBS, observing

                scope = observing() if not OBS.enabled else nullcontext()
            try:
                with scope:
                    run = run_experiment(
                        args.name,
                        store=store,
                        cache=_cache(args),
                        workers=args.workers,
                        shard=args.shard,
                        resume=not getattr(args, "no_resume", False),
                        live=live,
                    )
            except AbortRun as exc:
                print(f"aborted: {exc}")
                return 3
            print(
                f"{args.name}: executed {run.executed}, resumed {run.resumed}, "
                f"failed {run.failed} in {run.wall_s:.2f}s"
                + (f" (shard {run.shard[0]}/{run.shard[1]})" if run.shard else "")
            )
            return 1 if run.failed else 0
        if args.action == "status":
            if getattr(args, "json", False):
                import json as _json

                names = [args.name] if args.name else store.names()
                payloads = [
                    _experiment_payload(store, name, args.stall_factor)
                    for name in names
                ]
                out = payloads[0] if args.name else payloads
                print(_json.dumps(out, indent=2, sort_keys=True))
                return _payload_exit_code(payloads)
            if args.name is None:
                rows = [["experiment", "status", "tasks", "done"]]
                for name in store.names():
                    state = store.load(name)
                    counts = state.counts()
                    rows.append([
                        name, state.status, str(len(state.tasks)),
                        str(counts["done"] + counts["analyzed"]),
                    ])
                print(format_table(rows, title=f"experiments under {store.root}"))
                return 0
            _print_exp_status(store.load(args.name))
            return 0
        if args.action == "merge":
            state = store.merge(args.name)
            print(f"merged {len(store.shard_paths(args.name))} shard files")
            _print_exp_status(state)
            return 0
        # report
        state = store.load(args.name)
        results = ExperimentResults.load(
            state, _cache(args), mark_analyzed=args.mark_analyzed
        )
        frame = results.frame()
        columns = list(frame[0])
        rows = [columns] + [
            [f"{row.get(c):.6g}" if isinstance(row.get(c), float) else str(row.get(c))
             for c in columns]
            for row in frame
        ]
        print(format_table(rows, title=f"experiment: {args.name}"))
        if args.mark_analyzed:
            store.save(state)
        return 0
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2


def _cmd_cache(args: argparse.Namespace) -> int:
    """``fcdpm cache stats|clear`` -- result-cache hygiene."""
    cache = ResultCache()
    if args.action == "stats":
        stats = cache.stats()
        rows = [["namespace", "entries", "bytes"]]
        for namespace, ns in stats.namespaces.items():
            rows.append([namespace, str(ns.entries), str(ns.bytes)])
        rows.append(["(sidecars)", str(stats.sidecar_files),
                     str(stats.sidecar_bytes)])
        rows.append(["total", str(stats.entries), str(stats.total_bytes)])
        print(format_table(rows, title=f"result cache: {stats.root}"))
        return 0
    removed = cache.clear(namespace=args.namespace)
    scope = f"namespace {args.namespace!r}" if args.namespace else "all namespaces"
    print(f"removed {removed} entries ({scope}) from {cache.root}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``fcdpm trace summary|check <dir>`` -- inspect a trace bundle."""
    from .obs import read_jsonl, trace_summary, validate_trace_dir

    if args.action == "check":
        problems = validate_trace_dir(args.directory)
        if problems:
            for problem in problems:
                print(f"FAIL {problem}")
            return 1
        print(f"ok {args.directory}")
        return 0
    from pathlib import Path

    jsonl = Path(args.directory) / "spans.jsonl"
    if not jsonl.exists():
        print(f"no spans.jsonl under {args.directory}")
        return 2
    spans, metric_records = read_jsonl(jsonl)
    print(trace_summary(spans, metric_records))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``fcdpm`` console script."""
    parser = argparse.ArgumentParser(
        prog="fcdpm",
        description="Regenerate the experiments of Zhuo et al., DAC 2007.",
    )
    parser.add_argument("--seed", type=int, default=2007, help="trace RNG seed")
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="processes for seed sweeps and ablations (default 1 = serial; "
        "0 = all cores); results are bit-identical for any value",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute even when a cached result exists on disk",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table2", "table3", "fig2", "fig3", "fig4", "fig7"):
        sub.add_parser(name, help=f"regenerate {name}")
    sweep = sub.add_parser("sweep", help="run an ablation sweep")
    sweep.add_argument("name", help="storage | predictor | beta | recharge")

    run = sub.add_parser("run", help="run one named scenario")
    run.add_argument(
        "--scenario",
        help="registered scenario name (or the aliases "
        + " / ".join(sorted(SCENARIO_ALIASES))
        + ")",
    )
    run.add_argument(
        "--list", action="store_true", help="list registered scenarios"
    )
    run.add_argument(
        "--fast",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="use the vectorized kernel (bit-identical output; adaptive "
        "controllers transparently fall back to the scalar simulator)",
    )
    run.add_argument(
        "--trace",
        metavar="DIR",
        help="run with telemetry enabled and write spans.jsonl, "
        "trace.json (chrome://tracing) and manifest.json into DIR "
        "(bypasses the result cache)",
    )

    trace = sub.add_parser("trace", help="inspect a --trace output directory")
    trace.add_argument("action", choices=("summary", "check"))
    trace.add_argument("directory", help="directory written by run --trace")

    exp = sub.add_parser(
        "exp", help="define / run / inspect orchestrated experiments"
    )
    exp_sub = exp.add_subparsers(dest="action", required=True)
    exp_define = exp_sub.add_parser("define", help="persist an experiment spec")
    exp_define.add_argument("name", help="experiment name")
    exp_define.add_argument(
        "--kind", default="scenario",
        help="task kind (scenario | scenario-metrics | table2-metrics | "
        "sweep.storage | sweep.beta | sweep.recharge | sweep.predictor; "
        "the sweep shorthands storage/beta/recharge/predictor also work)",
    )
    exp_define.add_argument("--scenario", help="registered scenario name")
    exp_define.add_argument(
        "--seeds", type=_parse_seeds, help="'lo:hi' range or comma list"
    )
    exp_define.add_argument(
        "--policies", help="comma list of simulate_batch policy specs"
    )
    exp_define.add_argument(
        "--ablate", action="append", metavar="KNOB=V1,V2",
        help="one ablation axis (repeatable; cross product is expanded)",
    )
    exp_define.add_argument(
        "--fast", action="store_true", help="route through the vectorized kernel"
    )
    exp_define.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing definition with a different spec",
    )
    exp_run = exp_sub.add_parser("run", help="drive a defined experiment")
    exp_run.add_argument("name")
    exp_run.add_argument(
        "--shard", metavar="I/N",
        help="execute only this 1-based round-robin slice of the tasks",
    )
    exp_run.add_argument(
        "--no-resume", action="store_true",
        help="re-execute tasks even when their results are cached",
    )
    exp_resume = exp_sub.add_parser(
        "resume", help="alias of run (resume is the default behavior)"
    )
    exp_resume.add_argument("name")
    exp_resume.add_argument("--shard", metavar="I/N")
    for sub_parser in (exp_run, exp_resume):
        sub_parser.add_argument(
            "--live", action="store_true",
            help="publish live heartbeats + an OpenMetrics exposition "
            "under the experiment dir while running (fcdpm exp watch)",
        )
        sub_parser.add_argument(
            "--live-interval", type=float, metavar="SECONDS",
            help="live flush cadence (implies --live; default 1.0, "
            "also via $FCDPM_LIVE_INTERVAL)",
        )
    exp_status = exp_sub.add_parser("status", help="lifecycle summary")
    exp_status.add_argument("name", nargs="?", help="omit to list everything")
    exp_status.add_argument(
        "--json", action="store_true",
        help="machine-readable status incl. live heartbeats "
        "(exit 4 on a detected stall, 1 on failed tasks)",
    )
    exp_watch = exp_sub.add_parser(
        "watch", help="refreshing live-progress view of a running experiment"
    )
    exp_watch.add_argument("name")
    exp_watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll cadence for the refreshing view (default 2s)",
    )
    exp_watch.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (exit 4 = stall, 1 = failures)",
    )
    exp_watch.add_argument(
        "--json", action="store_true", help="emit the status payload as JSON"
    )
    for sub_parser in (exp_status, exp_watch):
        sub_parser.add_argument(
            "--stall-factor", type=float, default=3.0, metavar="N",
            help="flag a shard stalled when its heartbeat is older than "
            "N x its flush interval (default 3)",
        )
    exp_merge = exp_sub.add_parser(
        "merge", help="fold shard state files into state.json"
    )
    exp_merge.add_argument("name")
    exp_report = exp_sub.add_parser(
        "report", help="per-cell metric frame of a finished experiment"
    )
    exp_report.add_argument("name")
    exp_report.add_argument(
        "--mark-analyzed", action="store_true",
        help="advance consumed task records to 'analyzed'",
    )
    for sub_parser in (exp_define, exp_run, exp_resume, exp_status,
                       exp_watch, exp_merge, exp_report):
        sub_parser.add_argument(
            "--state-dir", default=None,
            help="experiment state root (default $FCDPM_EXP_DIR or "
            "<cache dir>/experiments)",
        )

    top = sub.add_parser(
        "top", help="live heartbeat overview of every experiment"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll cadence for the refreshing view (default 2s)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (exit 4 = stall, 1 = failures)",
    )
    top.add_argument(
        "--json", action="store_true", help="emit status payloads as JSON"
    )
    top.add_argument(
        "--stall-factor", type=float, default=3.0, metavar="N",
        help="flag a shard stalled when its heartbeat is older than "
        "N x its flush interval (default 3)",
    )
    top.add_argument(
        "--state-dir", default=None,
        help="experiment state root (default $FCDPM_EXP_DIR or "
        "<cache dir>/experiments)",
    )

    cache = sub.add_parser("cache", help="result-cache statistics and hygiene")
    cache_sub = cache.add_subparsers(dest="action", required=True)
    cache_sub.add_parser("stats", help="entry count / bytes per namespace")
    cache_clear = cache_sub.add_parser(
        "clear", help="delete entries (all, or one namespace)"
    )
    cache_clear.add_argument(
        "--namespace", default=None,
        help="only entries in this namespace (e.g. exp/scenario)",
    )

    sub.add_parser("report", help="run the full evaluation report")
    export = sub.add_parser("export", help="write figure/table CSVs")
    export.add_argument("directory", help="output directory for the CSVs")
    sub.add_parser("lifetime", help="run-to-empty lifetime comparison")

    args = parser.parse_args(argv)
    if args.command in ("table2", "table3"):
        return _cmd_table(args.command, args)
    if args.command == "report":
        from .analysis.experiments import full_report

        text = _cache(args).cached(
            "report",
            {"seed": args.seed},
            lambda: full_report(seed=args.seed, workers=args.workers),
        )
        print(text)
        return 0
    if args.command == "export":
        from .analysis.export import export_all

        paths = export_all(args.directory)
        for path in paths:
            print(f"wrote {path}")
        return 0
    if args.command == "lifetime":
        from .core.manager import PowerManager
        from .devices.camcorder import camcorder_device_params
        from .sim.lifetime import lifetime_comparison
        from .workload.mpeg import generate_mpeg_trace

        trace = generate_mpeg_trace(duration_s=300.0, seed=args.seed)
        dev = camcorder_device_params()
        managers = [
            PowerManager.conv_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
            PowerManager.asap_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
            PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0),
        ]
        results = lifetime_comparison(managers, trace, tank_capacity=2000.0)
        rows = [["policy", "lifetime (min)", "mean Ifc (A)"]]
        for name, r in results.items():
            rows.append([name, f"{r.lifetime / 60:.1f}",
                         f"{r.average_fuel_rate:.3f}"])
        print(format_table(rows, title="run-to-empty on a 2000 A-s reserve"))
        return 0
    handlers = {
        "fig2": _cmd_fig2,
        "fig3": _cmd_fig3,
        "fig4": _cmd_fig4,
        "fig7": _cmd_fig7,
        "sweep": _cmd_sweep,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "exp": _cmd_exp,
        "top": _cmd_top,
        "cache": _cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
