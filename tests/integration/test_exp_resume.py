"""Kill-then-resume integration: a crashed run completes on resume.

Simulates a mid-run crash with the ``FCDPM_EXP_ABORT_AFTER`` hook
(abort after N task commits), then resumes and proves

* only the remainder executes (cache-hit counters),
* the resumed tasks are loaded, not recomputed,
* the final merged result is ``==``-equal to an uninterrupted run.
"""

import pytest

from repro.exp import (
    AbortRun,
    ExperimentResults,
    ExperimentStore,
    run_experiment,
    scenario_batch_spec,
)
from repro.obs import observing
from repro.runtime.cache import ResultCache

ABORT_AFTER = 2


@pytest.fixture
def spec():
    return scenario_batch_spec(
        "killed", "exp2-fc-dpm", [0, 1, 2], policies=("conv-dpm", "fc-dpm")
    )


class TestKillThenResume:
    def test_resume_completes_the_crashed_run(self, spec, tmp_path, monkeypatch):
        store = ExperimentStore(tmp_path / "experiments")
        cache = ResultCache()
        store.define(spec)

        # -- crash mid-run -------------------------------------------------
        monkeypatch.setenv("FCDPM_EXP_ABORT_AFTER", str(ABORT_AFTER))
        with pytest.raises(AbortRun):
            run_experiment(spec.name, store=store, cache=cache)
        monkeypatch.delenv("FCDPM_EXP_ABORT_AFTER")

        crashed = store.load(spec.name)
        counts = crashed.counts()
        assert counts["done"] == ABORT_AFTER
        # The abort path reverts running tasks to defined -- no task is
        # left claiming to be in flight.
        assert counts["running"] == 0
        assert counts["defined"] == spec.n_tasks - ABORT_AFTER

        # -- resume, with telemetry proving the cache hits -----------------
        with observing() as obs:
            resumed = run_experiment(spec.name, store=store, cache=cache)
            snapshot = obs.metrics.snapshot()
        assert resumed.resumed == ABORT_AFTER
        assert resumed.executed == spec.n_tasks - ABORT_AFTER
        assert resumed.failed == 0
        resumed_counter = next(
            data["value"]
            for key, data in snapshot.items()
            if key.startswith("exp.tasks_resumed")
        )
        done_counter = next(
            data["value"]
            for key, data in snapshot.items()
            if key.startswith("exp.tasks_done")
        )
        assert resumed_counter == ABORT_AFTER
        assert done_counter == spec.n_tasks - ABORT_AFTER

        final = store.load(spec.name)
        assert final.status == "done"
        resumed_flags = [r.resumed for r in final.tasks.values()]
        assert sum(resumed_flags) == ABORT_AFTER

        # -- equality with an uninterrupted run ----------------------------
        uninterrupted = ExperimentResults.from_run(run_experiment(spec))
        recovered = ExperimentResults.load(final, cache)
        assert recovered.by_cell() == uninterrupted.by_cell()

    def test_double_crash_still_converges(self, spec, tmp_path, monkeypatch):
        store = ExperimentStore(tmp_path / "experiments")
        cache = ResultCache()
        store.define(spec)
        monkeypatch.setenv("FCDPM_EXP_ABORT_AFTER", "2")
        for _ in range(2):
            with pytest.raises(AbortRun):
                run_experiment(spec.name, store=store, cache=cache)
        monkeypatch.delenv("FCDPM_EXP_ABORT_AFTER")
        final_run = run_experiment(spec.name, store=store, cache=cache)
        assert final_run.resumed == 4
        assert final_run.executed == spec.n_tasks - 4
        assert store.load(spec.name).status == "done"
