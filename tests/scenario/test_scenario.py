"""Scenario spec + registry: declaration, serialization, building."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.power.battery_only import BatteryOnlySource
from repro.power.hybrid import HybridPowerSource
from repro.power.multistack import EfficiencyProportional, MultiStackHybrid
from repro.power.storage import LiIonBattery
from repro.scenario import (
    DeviceSpec,
    PolicySpec,
    Scenario,
    SourceSpec,
    WorkloadSpec,
    experiment_scenarios,
    get_scenario,
    register,
    scenario_names,
)


class TestSpecs:
    def test_unknown_kinds_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(kind="netflix")
        with pytest.raises(ConfigurationError):
            DeviceSpec(kind="toaster")
        with pytest.raises(ConfigurationError):
            PolicySpec(kind="yolo-dpm")
        with pytest.raises(ConfigurationError):
            SourceSpec(kind="fusion")
        with pytest.raises(ConfigurationError):
            SourceSpec(storage_kind="flywheel")
        with pytest.raises(ConfigurationError):
            SourceSpec(kind="multi-stack", sharing="alphabetical")

    def test_roundtrip_through_dict_is_lossless(self):
        sc = Scenario(
            name="probe",
            description="roundtrip probe",
            workload=WorkloadSpec(kind="experiment2", n_slots=42),
            device=DeviceSpec(kind="randomized", i_pd=1.0),
            policy=PolicySpec(kind="asap-dpm", rho=0.3, recharge_threshold=0.7),
            source=SourceSpec(kind="multi-stack", n_stacks=3, sharing="efficiency"),
            seed=11,
        )
        data = sc.to_dict()
        json.dumps(data)  # must be JSON-serializable for cache keys
        assert Scenario.from_dict(data) == sc

    def test_from_dict_defaults_missing_sections(self):
        sc = Scenario.from_dict({"name": "bare"})
        assert sc.workload.kind == "mpeg"
        assert sc.policy.kind == "fc-dpm"
        assert sc.seed == 2007


class TestRegistry:
    def test_canonical_names_present(self):
        names = scenario_names()
        for exp in ("exp1", "exp2"):
            for pol in ("conv-dpm", "asap-dpm", "fc-dpm"):
                assert f"{exp}-{pol}" in names
        assert "exp1-fc-dpm-multistack" in names
        assert "exp1-battery" in names

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="exp1-fc-dpm"):
            get_scenario("exp9-dpm")

    def test_duplicate_registration_rejected(self):
        sc = get_scenario("exp1-fc-dpm")
        with pytest.raises(ConfigurationError):
            register(sc)
        assert register(sc, overwrite=True) is sc

    def test_experiment_scenarios_order(self):
        names = [sc.policy.kind for sc in experiment_scenarios("exp1")]
        assert names == ["conv-dpm", "asap-dpm", "fc-dpm"]
        with pytest.raises(ConfigurationError):
            experiment_scenarios("exp3")


class TestBuilders:
    def test_build_trace_seed_override(self):
        sc = get_scenario("exp1-fc-dpm")
        a = sc.build_trace()
        b = sc.build_trace(2007)
        c = sc.build_trace(1)
        assert [s.t_idle for s in a] == [s.t_idle for s in b]
        assert [s.t_idle for s in a] != [s.t_idle for s in c]

    def test_build_manager_wires_policy_and_name(self):
        sc = get_scenario("exp2-asap-dpm")
        mgr = sc.build_manager()
        assert mgr.name == "exp2-asap-dpm"
        assert isinstance(mgr.source, HybridPowerSource)
        assert mgr.source.storage.capacity == 6.0
        assert mgr.source.storage.charge == 3.0

    def test_multistack_scenario_builds_multistack_source(self):
        sc = get_scenario("exp1-fc-dpm-multistack")
        mgr = sc.build_manager()
        assert isinstance(mgr.source, MultiStackHybrid)
        assert mgr.source.n_stacks == 2

    def test_battery_scenario_builds_battery_source(self):
        sc = get_scenario("exp1-battery")
        mgr = sc.build_manager()
        assert isinstance(mgr.source, BatteryOnlySource)
        assert isinstance(mgr.source.storage, LiIonBattery)
        assert mgr.source.storage.charge == 2000.0

    def test_efficiency_sharing_and_liion_hybrid(self):
        sc = Scenario(
            name="custom",
            source=SourceSpec(
                kind="multi-stack", n_stacks=3, sharing="efficiency",
                storage_capacity=8.0, storage_initial=4.0,
            ),
        )
        mgr = sc.build_manager()
        assert isinstance(mgr.source.sharing, EfficiencyProportional)
        assert mgr.source.storage.capacity == 8.0

        liion = Scenario(
            name="custom-liion",
            source=SourceSpec(storage_kind="liion", storage_capacity=50.0,
                              storage_initial=25.0),
        )
        src = liion.build_manager().source
        assert isinstance(src, HybridPowerSource)
        assert isinstance(src.storage, LiIonBattery)

    def test_build_device_kinds(self):
        cam = get_scenario("exp1-fc-dpm").build_device()
        rnd = get_scenario("exp2-fc-dpm").build_device()
        assert cam.t_pd != rnd.t_pd or cam.i_pd != rnd.i_pd
