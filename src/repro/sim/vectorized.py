"""Vectorized trace simulation: ``simulate_fast`` / ``simulate_batch``.

The scalar simulators execute one Python call chain per segment
(``SegmentIntegrator.integrate`` -> ``PowerSource.step`` ->
``ChargeStorage.step``), allocating a frozen ``SourceStep`` each time.
For the paper's piecewise-constant traces the whole run is really three
array computations -- the fuel integral ``sum Ifc(IF) * T`` over
segments (Eqs. 3-4), a clamped cumulative sum for the storage, and
per-slot reductions -- which is what this module does:

1. :func:`plan_trace_arrays` compiles a trace into structure-of-arrays
   form, reusing :func:`~repro.sim.integrator.plan_idle_segments` /
   :func:`~repro.sim.integrator.plan_active_segments` so the timeline
   convention stays single-sourced;
2. :meth:`~repro.fuelcell.efficiency.SystemEfficiencyModel.fuel_map_array`
   evaluates the fuel map over the whole command array at once;
3. :func:`clamped_cumsum` reproduces the
   :meth:`~repro.power.storage.ChargeStorage.step` saturation / bleed /
   deficit semantics with O(#clamp-events) array rescans;
4. :func:`simulate_fast` assembles a
   :class:`~repro.sim.slotsim.SimulationResult` **bit-identical** to
   ``SlotSimulator.run`` -- every arithmetic step replicates the
   scalar's IEEE-754 operation sequence exactly (seeded ``cumsum`` for
   running ledgers, elementwise closed forms for the fuel map, a
   sequential tail for clamp-heavy storage stretches), so equality is
   ``==``, not ``approx``.

Eligibility is conservative: the kernel runs only for the reference
hybrid plant (``HybridPowerSource`` + ``FCSystem`` + supercap/ideal
storage) under a *trace-functional* controller
(:attr:`~repro.core.baselines.SourceController.is_trace_functional`).
Two adaptive controllers get dedicated native passes: ASAP-DPM's
storage-coupled recharge hysteresis plays out over precomputed per-mode
arrays, and FC-DPM's learned inputs (the Eq. 14/15 exponential filters
and the active-current running mean) are scan-compiled up front so only
the storage-coupled slot solves run sequentially (:func:`_run_fc`).
Everything else -- other adaptive controllers, exotic plants, recording
runs, manual ``record_history`` -- falls back to the scalar
:class:`~repro.sim.slotsim.SlotSimulator`: never a wrong answer, only a
slower one.

:func:`simulate_batch` additionally fans seeds out across processes
(``workers=``): per-seed plans are compiled once in the coordinator and
shipped through ``multiprocessing.shared_memory``
(:mod:`repro.runtime.shm`), so workers attach zero-copy views instead
of unpickling array payloads per task.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from functools import cached_property
from itertools import repeat as _repeat
from typing import TYPE_CHECKING

import numpy as np

from ..core.baselines import (
    ASAPDPMController,
    SegmentContext,
    SlotActuals,
    SlotStart,
    StaticController,
)
from ..core.fc_dpm import FCDPMController
from ..core.setting import SlotProblem
from ..dpm.predictive import PredictiveShutdownPolicy
from ..errors import ConfigurationError, SimulationError
from ..fuelcell.efficiency import SystemEfficiencyModel
from ..fuelcell.fuel import FuelTank
from ..fuelcell.system import FCSystem
from ..obs import OBS
from ..power.hybrid import HybridPowerSource
from ..power.storage import IdealStorage, SuperCapacitor
from ..prediction.exponential import exponential_average_scan
from ..runtime.memo import solve_slot_memo
from ..runtime.parallel import ParallelMap, get_shared, resolve_workers
from ..runtime.shm import SharedArrayStore, attach_group
from .integrator import (
    KIND_CODES,
    KIND_NAMES,
    chunk_segments,
    plan_active_segments,
    plan_idle_segments,
    plan_slot_arrays,
)
from .slotsim import SimulationResult, SlotResult, SlotSimulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.manager import PowerManager
    from ..dpm.policy import DPMPolicy, IdleDecision
    from ..scenario.spec import Scenario
    from ..workload.trace import LoadTrace

#: Segment-kind encoding for the int8 ``TraceArrays.kind`` column
#: (aliases of the single-sourced codes in :mod:`repro.sim.integrator`).
_KIND_CODES = KIND_CODES
_KIND_NAMES = KIND_NAMES

#: After this many storage clamp events the kernel stops rescanning
#: arrays and finishes the stretch with a compiled-float sequential
#: loop -- cheaper than per-event numpy work on clamp-heavy runs
#: (conv-dpm saturates the storage on a large fraction of segments).
_MAX_RESCANS = 8


# -- trace compilation -------------------------------------------------------


@dataclass(frozen=True)
class TraceArrays:
    """A whole trace compiled to structure-of-arrays form.

    One row per executed segment, in execution order; slot boundaries
    and the idle/active split are kept as index arrays so per-slot
    reductions and the generic controller replay can address segments
    without re-planning.
    """

    #: Segment length (s), one per segment.
    duration: np.ndarray
    #: Load current (A), one per segment.
    i_load: np.ndarray
    #: Kind code per segment (see ``_KIND_CODES``), int8.
    kind: np.ndarray
    #: Remaining phase duration *including* the segment (s) -- the
    #: scalar ``SegmentContext.phase_duration`` lookahead.  ``None``
    #: when compiled with ``phase_context=False`` (the fast path does
    #: this: closed-form controllers never read it, and the generic
    #: replay derives the exact values from ``duration`` on demand).
    phase_duration: np.ndarray | None
    #: Remaining phase load charge including the segment (A-s), or
    #: ``None`` (see ``phase_duration``).
    phase_demand: np.ndarray | None
    #: Segment index where each slot starts; length ``n_slots + 1``.
    slot_bounds: np.ndarray
    #: Segment index where each slot's active phase starts.
    active_start: np.ndarray
    #: Per-slot sleep decision outcome (bool).
    slept: np.ndarray
    #: Per-slot aborted-sleep flag (bool).
    aborted: np.ndarray

    @property
    def n_segments(self) -> int:
        return self.duration.shape[0]

    @property
    def n_slots(self) -> int:
        return self.slot_bounds.shape[0] - 1

    # Policy-independent per-plan invariants.  A batch runs several
    # policies over one plan, so these are computed once and cached on
    # the instance (``cached_property`` writes the instance ``__dict__``
    # directly, which a frozen dataclass permits).

    @cached_property
    def load_charge_seg(self) -> np.ndarray:
        """Per-segment load charge ``i_load * duration`` (A-s)."""
        return self.i_load * self.duration

    @cached_property
    def duration_total(self) -> float:
        """Sequential (seeded-cumsum) total of ``duration``."""
        return float(_running_sums(0.0, self.duration)[-1])

    @cached_property
    def load_charge_total(self) -> float:
        """Sequential total of ``load_charge_seg``."""
        return float(_running_sums(0.0, self.load_charge_seg)[-1])

    @cached_property
    def slot_load_charge(self) -> np.ndarray:
        """Per-slot load charge, summed in segment order."""
        return _slot_sums(self, self.load_charge_seg)

    @cached_property
    def slot_index(self) -> np.ndarray:
        """Owning slot of each segment (the ``np.add.at`` scatter index)."""
        return np.repeat(np.arange(self.n_slots), np.diff(self.slot_bounds))

    @cached_property
    def slept_list(self) -> list:
        """``slept.tolist()``, shared by every policy run over this plan."""
        return self.slept.tolist()

    @cached_property
    def aborted_list(self) -> list:
        """``aborted.tolist()``, shared by every policy run over this plan."""
        return self.aborted.tolist()

    @cached_property
    def slot_load_list(self) -> list:
        """``slot_load_charge.tolist()``, shared across policy runs."""
        return self.slot_load_charge.tolist()

    @cached_property
    def slot_starts(self) -> np.ndarray:
        """First segment index of each slot (``slot_bounds[:-1]``)."""
        return self.slot_bounds[:-1]

    @cached_property
    def slot_ends(self) -> np.ndarray:
        """One-past-last segment index of each slot (``slot_bounds[1:]``)."""
        return self.slot_bounds[1:]

    @cached_property
    def n_sleeps(self) -> int:
        """Number of slots whose sleep decision was taken."""
        return int(np.count_nonzero(self.slept))

    @cached_property
    def n_aborted(self) -> int:
        """Number of aborted sleeps."""
        return int(np.count_nonzero(self.aborted))


def _slot_sums(plan: "TraceArrays", values: np.ndarray) -> np.ndarray:
    """Per-slot sums of a per-segment array, in scalar accumulation order.

    ``np.add.at`` accumulates unbuffered, applying the adds in index
    order -- each slot's sum is built left to right exactly like the
    scalar's per-slot ``+=`` loop.  (``np.add.reduceat`` is *not* a
    substitute: it reorders even four-element blocks on current numpy,
    observed one ulp off the sequential sum.)  The property suite
    checks the equality on randomized traces.
    """
    out = np.zeros(plan.n_slots)
    if plan.n_slots and plan.n_segments:
        np.add.at(out, plan.slot_index, values)
    return out


def replay_policy(policy: "DPMPolicy", trace: "LoadTrace") -> list["IdleDecision"]:
    """Collect the per-slot sleep decisions by replaying the policy.

    Device-side DPM policies are pure functions of the observed idle
    history (they never see the power source), so firing
    ``on_idle_start`` / ``on_idle_end`` in slot order yields exactly the
    decisions -- and the same policy end state -- the scalar simulator
    produces while interleaving integration in between.

    Policies exposing a ``decisions_array`` scan hook (the paper's
    :class:`~repro.dpm.predictive.PredictiveShutdownPolicy` over an
    exponential-average predictor) skip the per-slot loop entirely; the
    hook owns the exact end-state commit and returns None whenever it
    cannot guarantee bit-exactness, falling back to the replay.
    """
    compiled = getattr(policy, "decisions_array", None)
    if compiled is not None:
        decisions = compiled([slot.t_idle for slot in trace])
        if decisions is not None:
            return decisions
    decisions = []
    for slot in trace:
        decisions.append(policy.on_idle_start())
        policy.on_idle_end(slot.t_idle)
    return decisions


def plan_trace_arrays(
    device,
    trace: "LoadTrace",
    decisions,
    max_segment: float | None = None,
    *,
    phase_context: bool = True,
) -> TraceArrays:
    """Compile ``trace`` + per-slot ``decisions`` into :class:`TraceArrays`.

    Reuses :func:`plan_idle_segments` / :func:`plan_active_segments` /
    :func:`chunk_segments`, so the segment layout is the scalar
    simulator's, row for row.  ``phase_context=False`` skips the
    remaining-phase lookahead columns (``phase_duration`` /
    ``phase_demand`` come back ``None``) -- the fast path uses this
    because its closed-form controllers never read them and the generic
    replay derives them on demand; the per-segment bookkeeping is a
    measurable share of compile time.
    """
    slots = list(trace)
    decisions = list(decisions)
    if len(decisions) != len(slots):
        raise ConfigurationError(
            f"got {len(decisions)} decisions for {len(slots)} slots"
        )
    if max_segment is None:
        return _plan_trace_arrays_numpy(device, slots, decisions, phase_context)
    durations: list[float] = []
    loads: list[float] = []
    kinds: list[int] = []
    phase_dur: list[float] = []
    phase_dem: list[float] = []
    slot_bounds = [0]
    active_start: list[int] = []
    slept_l: list[bool] = []
    aborted_l: list[bool] = []
    dur_append = durations.append
    load_append = loads.append
    kind_append = kinds.append
    pdur_append = phase_dur.append
    pdem_append = phase_dem.append
    astart_append = active_start.append
    bounds_append = slot_bounds.append
    codes = _KIND_CODES

    for slot, decision in zip(slots, decisions):
        idle_segments, slept, aborted = plan_idle_segments(
            device, slot.t_idle, decision.sleep, decision.sleep_after
        )
        slept_l.append(slept)
        aborted_l.append(aborted)
        active_segments = plan_active_segments(device, slot)
        if max_segment is not None:
            idle_segments = chunk_segments(idle_segments, max_segment)
            active_segments = chunk_segments(active_segments, max_segment)
        if phase_context:
            for segments in (idle_segments, active_segments):
                if segments is active_segments:
                    astart_append(len(durations))
                # Inlined phase_totals(): plain sequential accumulation,
                # bit-identical to the sum() calls run_phase makes.
                remaining = 0.0
                demand = 0.0
                for d, i_l, _ in segments:
                    remaining += d
                    demand += d * i_l
                for d, i_l, kind in segments:
                    dur_append(d)
                    load_append(i_l)
                    kind_append(codes[kind])
                    pdur_append(remaining)
                    pdem_append(demand)
                    remaining -= d
                    demand -= i_l * d
        else:
            for d, i_l, kind in idle_segments:
                dur_append(d)
                load_append(i_l)
                kind_append(codes[kind])
            astart_append(len(durations))
            for d, i_l, kind in active_segments:
                dur_append(d)
                load_append(i_l)
                kind_append(codes[kind])
        bounds_append(len(durations))

    return TraceArrays(
        duration=np.asarray(durations, dtype=float),
        i_load=np.asarray(loads, dtype=float),
        kind=np.asarray(kinds, dtype=np.int8),
        phase_duration=np.asarray(phase_dur, dtype=float) if phase_context else None,
        phase_demand=np.asarray(phase_dem, dtype=float) if phase_context else None,
        slot_bounds=np.asarray(slot_bounds, dtype=np.intp),
        active_start=np.asarray(active_start, dtype=np.intp),
        slept=np.asarray(slept_l, dtype=bool),
        aborted=np.asarray(aborted_l, dtype=bool),
    )


def _plan_trace_arrays_numpy(
    device, slots, decisions, phase_context: bool
) -> TraceArrays:
    """Array-native planner for the unchunked (``max_segment=None``) case.

    Extracts the slot/decision columns and hands them to
    :func:`repro.sim.integrator.plan_slot_arrays` -- the layout rules
    stay single-sourced in :mod:`repro.sim.integrator` and the parity
    tests enforce the row-for-row match with the scalar planners.
    """
    n_slots = len(slots)
    t_idle = np.array([s.t_idle for s in slots], dtype=float)
    t_active = np.array([s.t_active for s in slots], dtype=float)
    i_active = np.array([s.i_active for s in slots], dtype=float)
    sleep = np.fromiter((d.sleep for d in decisions), dtype=bool, count=n_slots)
    sleep_after = np.fromiter(
        (d.sleep_after for d in decisions), dtype=float, count=n_slots
    )
    return TraceArrays(
        **plan_slot_arrays(
            device,
            t_idle,
            t_active,
            i_active,
            sleep,
            sleep_after,
            phase_context=phase_context,
        )
    )


# -- exact array kernels -----------------------------------------------------


def _running_sums(initial: float, values: np.ndarray) -> np.ndarray:
    """Sequential running sums: ``out[k] = initial + values[0] + ... + values[k-1]``.

    ``np.cumsum`` accumulates strictly left to right (``out[i] =
    out[i-1] + in[i]``), so seeding the first element with ``initial``
    reproduces a scalar ``+=`` loop bit for bit.  ``np.sum`` would not
    (pairwise summation).
    """
    out = np.empty(values.shape[0] + 1, dtype=float)
    out[0] = initial
    if values.shape[0]:
        seg = values.astype(float, copy=True)
        seg[0] += initial
        np.cumsum(seg, out=seg)
        out[1:] = seg
    return out


def clamped_cumsum(
    deltas: np.ndarray,
    initial: float,
    capacity: float,
    bled: float = 0.0,
    deficit: float = 0.0,
    max_rescans: int = _MAX_RESCANS,
) -> tuple[np.ndarray, float, float]:
    """Bounded-bucket recurrence over ``deltas``, exactly as the scalar.

    Reproduces :meth:`ChargeStorage._apply` semantics: the charge
    accumulates sequentially; overflow above ``capacity`` is bled and
    the level pins to ``capacity``; underflow below zero is recorded as
    deficit and the level pins to ``0.0``.  Returns ``(charges, bled,
    deficit)`` with ``charges[0] == initial`` and one entry per delta.

    Strategy: a seeded cumulative sum is bit-identical to the scalar
    ``+=`` loop *between* clamp events, so cumsum to the first
    violation, apply the scalar clamp arithmetic there, and resume.
    After ``max_rescans`` violations the remaining stretch runs as a
    plain sequential float loop, which beats per-event array rescans on
    clamp-heavy runs.
    """
    n = deltas.shape[0]
    charges = np.empty(n + 1, dtype=float)
    charges[0] = initial
    cur = float(initial)
    start = 0
    rescans = 0
    scratch = None
    while start < n and rescans < max_rescans:
        if scratch is None:
            # One scratch buffer serves every rescan: each pass copies
            # the remaining suffix into it instead of allocating a
            # fresh array per clamp event (O(n * rescans) churn on
            # clamp-heavy traces).
            scratch = np.empty(n, dtype=float)
        seg = scratch[: n - start]
        np.copyto(seg, deltas[start:])
        seg[0] += cur
        np.cumsum(seg, out=seg)
        bad = (seg > capacity) | (seg < 0.0)
        nbad = int(np.count_nonzero(bad))
        if not nbad:
            charges[start + 1 :] = seg
            return charges, bled, deficit
        k = int(np.argmax(bad))
        if k:
            charges[start + 1 : start + k + 1] = seg[:k]
        new = float(seg[k])
        if new > capacity:
            bled += new - capacity
            cur = capacity
        else:
            deficit += -new
            cur = 0.0
        charges[start + k + 1] = cur
        start += k + 1
        if nbad > max_rescans - rescans:
            # The unclamped trajectory violates the bounds more times
            # than there are rescans left -- a clamp-dense stretch.
            # Skip straight to the sequential tail instead of paying
            # an array copy + cumsum per clamp event (a density
            # heuristic: it only changes speed, never values).
            break
        rescans += 1
    if start < n:
        # List-accumulate then bulk-assign: per-element ndarray stores
        # would dominate this clamp-dense tail.
        tail = []
        tail_append = tail.append
        for delta in deltas[start:].tolist():
            new = cur + delta
            if new > capacity:
                bled += new - capacity
                cur = capacity
            elif new < 0.0:
                deficit += -new
                cur = 0.0
            else:
                cur = new
            tail_append(cur)
        charges[start + 1 :] = tail
    return charges, bled, deficit


def _realize_commands(fc: FCSystem, commands: np.ndarray) -> np.ndarray:
    """Vectorized ``FCSystem.set_output(cmd, clamp=True)`` per segment."""
    model = fc.model
    realized = np.minimum(np.maximum(commands, model.if_min), model.if_max)
    if fc.allow_zero_output:
        realized = np.where(commands == 0.0, 0.0, realized)
    return realized


def _fuel_currents(fc: FCSystem, realized: np.ndarray) -> np.ndarray:
    """Vectorized ``FCSystem.fc_current()``: the zero shortcut + fuel map."""
    i_fc = fc.model.fuel_map_array(realized)
    # FCSystem.fc_current returns exactly 0.0 for a zero setting even
    # when the model itself would not (e.g. composed models with fan
    # standby draw) -- mask after the map to match.
    return np.where(realized == 0.0, 0.0, i_fc)


def _storage_deltas(
    storage, i_f: np.ndarray, i_load: np.ndarray, durations: np.ndarray
) -> np.ndarray:
    """Per-segment signed charge delta, exactly as ``storage.step``."""
    raw = (i_f - i_load) * durations
    if type(storage) is SuperCapacitor:
        delta = np.where(raw > 0, raw * storage.coulombic_efficiency, raw)
        return delta - storage.leakage_current * durations
    return raw  # IdealStorage: step() applies current * dt unmodified


# -- eligibility -------------------------------------------------------------


#: Human-readable ineligibility reasons mapped (by prefix) to the short
#: label used on the ``sim.fast_ineligible{reason=...}`` counter.  The
#: controller prefixes are ordered most-specific first: a scan-capable
#: adaptive controller blocked by its predictors or its policy coupling
#: reports differently from one with no array form at all, so ``trace
#: summary`` shows *why* a run routed scalar.
_REASON_KEYS = (
    ("recording requested", "record"),
    ("source type", "source-type"),
    ("FC system type", "fc-type"),
    ("fuel tank type", "tank-type"),
    ("efficiency model", "model-clamp"),
    ("storage type", "storage-type"),
    ("source.record_history", "record-history"),
    ("controller predictors", "controller-predictor"),
    ("controller/policy coupling", "controller-coupling"),
    ("controller", "controller-adaptive"),
)


def _reason_key(reason: str) -> str:
    """Short metric-label slug for an ineligibility reason string."""
    for prefix, key in _REASON_KEYS:
        if reason.startswith(prefix):
            return key
    return "other"


def fast_path_ineligibility(
    manager: "PowerManager", *, record: bool = False
) -> str | None:
    """Why this configuration cannot take the array kernel (None = it can).

    The checks are exact-type on purpose: a subclass may override any
    of the semantics the kernel replicates, so it routes to the scalar
    simulator instead.  The returned string is a human-readable reason
    (used in docs/tests); callers treat any non-None as "fall back".
    """
    if record:
        return "recording requested (Recorder consumes per-segment steps)"
    source = manager.source
    if type(source) is not HybridPowerSource:
        return f"source type {type(source).__name__} has no array kernel"
    if type(source.fc) is not FCSystem:
        return f"FC system type {type(source.fc).__name__} has no array kernel"
    if type(source.fc.tank) is not FuelTank:
        return f"fuel tank type {type(source.fc.tank).__name__} has no array kernel"
    if type(source.fc.model).clamp is not SystemEfficiencyModel.clamp:
        return "efficiency model overrides clamp()"
    if type(source.storage) not in (SuperCapacitor, IdealStorage):
        return f"storage type {type(source.storage).__name__} has no array kernel"
    if source.record_history:
        return "source.record_history is enabled"
    controller = manager.controller
    if not controller.is_trace_functional:
        if type(controller) is FCDPMController:
            return (
                "controller predictors are not scan-compilable "
                "(FC-DPM's fast path needs exact "
                "ExponentialAveragePredictor instances); "
                "controller FCDPMController is not trace-functional"
            )
        return (
            f"controller {type(controller).__name__} is not trace-functional"
        )
    if type(controller) is FCDPMController:
        # The predictor scans assume each predictor sees exactly one
        # predict/observe pair per slot.  That holds for the standard
        # wirings -- the controller observing its own idle predictor,
        # or sharing one instance with the paper's predictive-shutdown
        # policy (which then owns the observations) -- but not for
        # double-fed or untrackable aliasing, which routes scalar.
        policy_predictor = getattr(manager.policy, "predictor", None)
        shares_idle = policy_predictor is controller.idle_length_predictor
        if controller.idle_length_predictor is controller.active_length_predictor:
            return (
                "controller/policy coupling has no scan form: FC-DPM's "
                "idle and active predictors are the same instance"
            )
        if policy_predictor is controller.active_length_predictor:
            return (
                "controller/policy coupling has no scan form: the DPM "
                "policy shares FC-DPM's active-length predictor"
            )
        if controller.observes_idle and shares_idle:
            return (
                "controller/policy coupling has no scan form: the idle "
                "predictor is shared while observes_idle is on "
                "(double-fed per slot)"
            )
        if (
            not controller.observes_idle
            and shares_idle
            and type(manager.policy) is not PredictiveShutdownPolicy
        ):
            return (
                "controller/policy coupling has no scan form: the idle "
                f"predictor is shared but policy type "
                f"{type(manager.policy).__name__} does not pin one "
                "observation per slot"
            )
    return None


# -- kernel passes -----------------------------------------------------------


@dataclass(frozen=True)
class _KernelRun:
    """Raw per-segment outputs of one kernel pass.

    ``i_f`` / ``i_fc`` are plain floats when ``const_i_f`` is set (a
    constant-output run): every consumer broadcasts them.
    """

    i_f: np.ndarray | float
    i_fc: np.ndarray | float
    fuel: np.ndarray
    charges: np.ndarray
    bled: float
    deficit: float
    #: Final ASAP recharge flag, or None for non-ASAP controllers.
    recharging: bool | None
    #: When every segment realized the same output, that value --
    #: assembly then broadcasts the per-slot gathers instead of
    #: indexing (conv-dpm / static runs are always constant).
    const_i_f: float | None = None


def _controller_commands(
    manager: "PowerManager", plan: TraceArrays, trace: "LoadTrace"
) -> np.ndarray:
    """Commanded output current per segment for a trace-functional controller.

    Prefers the controller's closed-form
    :meth:`~repro.core.baselines.SourceController.output_array` hook;
    otherwise replays :meth:`output` segment by segment with the scalar
    call order (slot lifecycle callbacks included) and the storage
    context fields poisoned to NaN -- a controller that claims to be
    trace-functional but reads storage state produces NaN results
    instead of silently wrong ones.
    """
    controller = manager.controller
    commands = controller.output_array(plan)
    if commands is not None:
        return np.asarray(commands, dtype=float)
    nan = float("nan")
    device = manager.device
    out = np.empty(plan.n_segments, dtype=float)
    durations = plan.duration.tolist()
    loads = plan.i_load.tolist()
    kinds = plan.kind.tolist()
    have_context = plan.phase_duration is not None
    if have_context:
        phase_dur = plan.phase_duration.tolist()
        phase_dem = plan.phase_demand.tolist()
    bounds = plan.slot_bounds.tolist()
    astart = plan.active_start.tolist()
    slept = plan.slept.tolist()
    for s, slot in enumerate(trace):
        controller.on_idle_start(
            SlotStart(
                slot_index=s,
                sleeping=slept[s],
                i_idle=device.i_slp if slept[s] else device.i_sdb,
                storage_charge=nan,
            )
        )
        for phase, lo, hi in (
            ("idle", bounds[s], astart[s]),
            ("active", astart[s], bounds[s + 1]),
        ):
            if not have_context:
                # Derive the remaining-phase lookahead exactly as
                # run_phase does: sequential sums over the phase.
                remaining = 0.0
                demand = 0.0
                for k in range(lo, hi):
                    remaining += durations[k]
                    demand += durations[k] * loads[k]
            for k in range(lo, hi):
                if have_context:
                    remaining = phase_dur[k]
                    demand = phase_dem[k]
                out[k] = controller.output(
                    SegmentContext(
                        slot_index=s,
                        phase=phase,
                        kind=_KIND_NAMES[kinds[k]],
                        duration=durations[k],
                        i_load=loads[k],
                        storage_charge=nan,
                        storage_capacity=nan,
                        phase_duration=remaining,
                        phase_demand=demand,
                    )
                )
                if not have_context:
                    remaining -= durations[k]
                    demand -= loads[k] * durations[k]
        controller.on_slot_end(
            SlotActuals(
                slot_index=s,
                t_idle=slot.t_idle,
                t_active=slot.t_active,
                i_active=slot.i_active,
            )
        )
    return out


def _run_from_plan(
    manager: "PowerManager", plan: TraceArrays, commands: np.ndarray
) -> _KernelRun | None:
    """Array pass for storage-independent command sequences.

    Returns None when a finite fuel tank would deplete mid-run -- the
    caller reruns the scalar path, which raises the exact
    ``DepletedError`` at the exact segment.
    """
    source = manager.source
    fc = source.fc
    storage = source.storage
    n = plan.n_segments
    const_i_f = None
    if n and commands[0] == commands[-1] and not bool(np.any(commands != commands[0])):
        # Constant command sequence (conv-dpm, static controllers):
        # realize and map once with the exact scalar expressions, then
        # broadcast.  A NaN-poisoned sequence never matches (NaN !=
        # NaN) and keeps the elementwise path.
        model = fc.model
        cmd0 = float(commands[0])
        if fc.allow_zero_output and cmd0 == 0.0:
            r0 = 0.0
        else:
            r0 = min(max(cmd0, model.if_min), model.if_max)
        const_i_f = r0
        # Python floats, not np.full arrays: every downstream use is a
        # broadcasting numpy expression, and a scalar broadcast is the
        # identical elementwise operation without the allocation.
        realized = r0
        i_fc = 0.0 if r0 == 0.0 else model.fc_current(r0)
    else:
        realized = _realize_commands(fc, commands)
        i_fc = _fuel_currents(fc, realized)
    fuel = i_fc * plan.duration
    tank = fc.tank
    if math.isfinite(tank.capacity) and plan.n_segments:
        consumed = _running_sums(tank.consumed, fuel)
        # Exact scalar depletion test: request > capacity - consumed-so-far.
        if bool(np.any(fuel > tank.capacity - consumed[:-1])):
            return None
    deltas = _storage_deltas(storage, realized, plan.i_load, plan.duration)
    charges, bled, deficit = clamped_cumsum(
        deltas,
        storage.charge,
        storage.capacity,
        bled=storage.bled_charge,
        deficit=storage.deficit_charge,
    )
    return _KernelRun(
        realized, i_fc, fuel, charges, bled, deficit, None, const_i_f
    )


def _run_asap(manager: "PowerManager", plan: TraceArrays) -> _KernelRun | None:
    """Native pass for ASAP-DPM's storage-coupled recharge hysteresis.

    Both candidate modes (load-follow, full-output recharge) are
    precomputed as arrays; one sequential float pass then plays the
    scalar hysteresis -- per-segment ``soc = charge / capacity``
    compared against the thresholds *before* the segment integrates,
    exactly as ``ASAPDPMController.output`` does -- while applying the
    storage clamp arithmetic inline.
    """
    controller = manager.controller
    source = manager.source
    fc = source.fc
    storage = source.storage
    model = fc.model

    cmd_follow = np.minimum(np.maximum(plan.i_load, model.if_min), model.if_max)
    real_follow = _realize_commands(fc, cmd_follow)
    ifc_follow = _fuel_currents(fc, real_follow)
    fuel_follow = ifc_follow * plan.duration
    delta_follow = _storage_deltas(storage, real_follow, plan.i_load, plan.duration)

    cmd_re = model.if_max
    if cmd_re == 0.0 and fc.allow_zero_output:
        real_re = 0.0
    else:
        real_re = min(max(cmd_re, model.if_min), model.if_max)
    ifc_re = 0.0 if real_re == 0.0 else model.fc_current(real_re)
    # Scalars broadcast through every expression below -- same
    # elementwise arithmetic as materialized np.full columns.
    fuel_re = ifc_re * plan.duration
    delta_re = _storage_deltas(storage, real_re, plan.i_load, plan.duration)

    threshold = controller.recharge_threshold
    full_level = controller.full_level
    recharging = controller.recharging
    cap = storage.capacity
    cur = storage.charge
    bled = storage.bled_charge
    deficit = storage.deficit_charge
    tank = fc.tank
    tank_cap = tank.capacity
    consumed = tank.consumed
    finite = math.isfinite(tank_cap)

    # Plain Python lists in the loop: per-element ndarray writes cost
    # ~5x a list append, and this sequential pass is the asap kernel's
    # entire critical path.
    charge_l = [cur]
    charge_append = charge_l.append
    mode_l = []
    mode_append = mode_l.append
    f_fo = fuel_follow.tolist()
    f_re = fuel_re.tolist()
    d_fo = delta_follow.tolist()
    d_re = delta_re.tolist()
    has_cap = cap > 0
    for fuel_fo, delta_fo, fuel_k, delta in zip(f_fo, d_fo, f_re, d_re):
        if has_cap:
            soc = cur / cap
            if soc < threshold:
                recharging = True
            elif soc >= full_level:
                recharging = False
        if not recharging:
            fuel_k = fuel_fo
            delta = delta_fo
        if finite and fuel_k > tank_cap - consumed:
            return None  # scalar rerun raises the exact DepletedError
        consumed += fuel_k
        new = cur + delta
        if new > cap:
            bled += new - cap
            cur = cap
        elif new < 0.0:
            deficit += -new
            cur = 0.0
        else:
            cur = new
        charge_append(cur)
        mode_append(recharging)

    charges = np.asarray(charge_l)
    mode = np.asarray(mode_l, dtype=bool)
    i_f = np.where(mode, real_re, real_follow)
    i_fc = np.where(mode, ifc_re, ifc_follow)
    fuel = np.where(mode, fuel_re, fuel_follow)
    return _KernelRun(i_f, i_fc, fuel, charges, bled, deficit, recharging)


def _fc_scan_seeds(manager: "PowerManager") -> tuple[float, float] | None:
    """Pre-replay predictor estimates for the FC-DPM pass, or None.

    Must be captured *before* :func:`replay_policy` runs: the default
    wiring shares one idle predictor between the device policy and the
    controller, and the replay advances it to its end state.  The
    controller's scans re-derive the per-slot predictions from these
    seeds instead.
    """
    controller = manager.controller
    if type(controller) is not FCDPMController:
        return None
    return (
        controller.idle_length_predictor.estimate,
        controller.active_length_predictor.estimate,
    )


def _run_fc(
    manager: "PowerManager",
    plan: TraceArrays,
    trace: "LoadTrace | None",
    seeds: tuple[float, float],
    *,
    slots: tuple[list, list, list] | None = None,
    scans: tuple | None = None,
) -> _KernelRun | None:
    """Native pass for FC-DPM: scan-compiled predictors + live slot solver.

    The controller's only learned inputs -- the Hwang-Wu exponential
    filters (Eq. 14/15) and the active-current running mean -- depend on
    the trace alone, so both predictor series are compiled up front with
    :func:`~repro.prediction.exponential.exponential_average_scan`
    (bit-exact against the sequential predict/observe protocol).  What
    cannot be precomputed is the Section-3 slot solve: its ``c_ini`` is
    the live storage level, so one sequential pass per slot poses the
    exact :class:`~repro.core.setting.SlotProblem` the scalar controller
    poses -- hitting the same :func:`~repro.runtime.memo.solve_slot_memo`
    entries byte for byte -- and integrates the slot's segments with the
    storage-saturation guard, fuel draw, and clamp ledger inlined as
    compiled-float arithmetic.  Controller and predictor end state are
    committed only on success; a finite tank that would deplete mid-run
    returns None with the manager untouched (beyond ``start_run``), so
    the caller's scalar rerun sees pristine state.

    The stacked batch driver passes pre-extracted slot columns via
    ``slots`` (so no ``trace`` walk happens here) and pre-sliced rows of
    its batched predictor scans via ``scans`` -- ``(idle_preds,
    idle_final, active_preds, active_final)``, with the idle pair None
    when nobody observes the idle predictor.  Both default to the
    single-trace computation and are bit-identical to it.
    """
    controller = manager.controller
    source = manager.source
    fc = source.fc
    storage = source.storage
    fc_model = fc.model
    device = manager.device
    n_slots = plan.n_slots

    if slots is not None:
        t_idles, t_actives, i_actives = slots
    else:
        t_idles = [slot.t_idle for slot in trace]
        t_actives = [slot.t_active for slot in trace]
        i_actives = [slot.i_active for slot in trace]

    idle_pred = controller.idle_length_predictor
    active_pred = controller.active_length_predictor
    est_idle0, est_active0 = seeds
    policy_feeds_idle = getattr(manager.policy, "predictor", None) is idle_pred
    if scans is not None:
        idle_preds, idle_final, active_preds, active_final = scans
    else:
        if controller.observes_idle or policy_feeds_idle:
            idle_preds, idle_final = exponential_average_scan(
                idle_pred.factor, est_idle0, t_idles
            )
        else:
            # Nobody observes the controller's idle predictor during the
            # run: it predicts its frozen pre-run estimate every slot.
            idle_preds = None
            idle_final = None
        active_preds, active_final = exponential_average_scan(
            active_pred.factor, est_active0, t_actives
        )
    # Problem columns, floored array-natively (np.maximum matches the
    # scalar max() bitwise here: no signed-zero tie against 1e-6).  A
    # frozen idle predictor contributes one constant, not a list.
    if idle_preds is None:
        ti_l = None
        ti_const = max(est_idle0, 1e-6)
    else:
        ti_l = np.maximum(idle_preds, 1e-6).tolist()
        ti_const = 0.0
    ta_l = np.maximum(active_preds, 1e-6).tolist()

    durs = plan.duration.tolist()
    loads = plan.i_load.tolist()
    bounds = plan.slot_bounds.tolist()
    astart = plan.active_start.tolist()
    slept_l = plan.slept.tolist()

    # Per-segment outputs accumulate in plain lists (the pass walks
    # segments strictly in order); bulk-converted to arrays at the end.
    if_l: list[float] = []
    ifc_l: list[float] = []
    fuel_l: list[float] = []
    if_append = if_l.append
    ifc_append = ifc_l.append
    fuel_append = fuel_l.append

    cap = storage.capacity
    hi_guard = 0.999 * cap
    lo_guard = 0.001 * cap
    cur = storage.charge
    charge_l = [cur]
    charge_append = charge_l.append
    bled = storage.bled_charge
    deficit = storage.deficit_charge
    tank = fc.tank
    tank_cap = tank.capacity
    consumed = tank.consumed
    finite = math.isfinite(tank_cap)

    allow_zero = fc.allow_zero_output
    if_min = fc_model.if_min
    if_max = fc_model.if_max
    fc_current = fc_model.fc_current
    model = controller.model
    clamp = model.clamp
    is_supercap = type(storage) is SuperCapacitor
    if is_supercap:
        ce = storage.coulombic_efficiency
        leak = storage.leakage_current

    c_target = controller._c_target  # set by start_run just before this pass
    c_max = controller._c_max
    est_fixed = controller.active_current_estimate
    fallback = controller.fallback_active_current
    acs = controller._active_current_sum
    acn = controller._active_current_n
    overheads = controller._overheads(True)
    i_sdb = device.i_sdb
    i_slp = device.i_slp

    # The active-current running mean (i_est at slot k uses the sum over
    # slots < k) is trace-functional: precompute the whole series with a
    # seeded cumsum that replays the scalar ``+=`` fold bit for bit.
    if n_slots:
        sums = _running_sums(acs, np.asarray(i_actives, dtype=float))
        acs_final = float(sums[-1])
    else:
        sums = None
        acs_final = acs
    if est_fixed is not None:
        est_l = None
    elif n_slots:
        counts = acn + np.arange(n_slots)
        with np.errstate(divide="ignore", invalid="ignore"):
            means = sums[:-1] / counts
        est_l = np.where(counts == 0, fallback, means).tolist()
    else:
        est_l = []

    solutions = []
    guards = 0
    if_idle_last = controller._if_idle
    if_active_last = controller._if_active
    last_planned = controller._active_planned

    for k in range(n_slots):
        sleeping = slept_l[k]
        problem = SlotProblem(
            t_idle=ti_const if ti_l is None else ti_l[k],
            t_active=ta_l[k],
            i_idle=i_slp if sleeping else i_sdb,
            i_active=est_fixed if est_l is None else est_l[k],
            c_ini=cur,
            c_end=c_target,
            c_max=c_max,
            sleeping=sleeping,
            **(overheads if sleeping else {}),
        )
        solution = solve_slot_memo(problem, model)
        solutions.append(solution)
        if_idle = solution.if_idle
        if_idle_last = if_idle
        if_active_last = solution.if_active
        last_planned = False

        for j in range(bounds[k], astart[k]):
            d = durs[j]
            i_l = loads[j]
            # Storage-saturation guard, exactly as FCDPMController.output.
            if (cur >= hi_guard and if_idle > i_l) or (
                cur <= lo_guard and if_idle < i_l
            ):
                guards += 1
                cmd = clamp(i_l)
            else:
                cmd = if_idle
            if allow_zero and cmd == 0.0:
                r = 0.0
                ifc_v = 0.0
            else:
                r = min(max(cmd, if_min), if_max)
                ifc_v = 0.0 if r == 0.0 else fc_current(r)
            fuel_j = ifc_v * d
            if finite and fuel_j > tank_cap - consumed:
                return None  # scalar rerun raises the exact DepletedError
            consumed += fuel_j
            raw = (r - i_l) * d
            if is_supercap:
                delta = (raw * ce if raw > 0 else raw) - leak * d
            else:
                delta = raw
            new = cur + delta
            if new > cap:
                bled += new - cap
                cur = cap
            elif new < 0.0:
                deficit += -new
                cur = 0.0
            else:
                cur = new
            if_append(r)
            ifc_append(ifc_v)
            fuel_append(fuel_j)
            charge_append(cur)

        lo = astart[k]
        hi = bounds[k + 1]
        if lo < hi:
            # Sequential phase totals, as run_phase derives them.
            rem = 0.0
            dem = 0.0
            for j in range(lo, hi):
                rem += durs[j]
                dem += durs[j] * loads[j]
            # Section-4.2 re-plan from the actual active period; held
            # (constant command) for the rest of the phase.
            if_a = (dem + c_target - cur) / rem
            if_active_last = clamp(if_a)
            last_planned = True
            cmd = if_active_last
            if allow_zero and cmd == 0.0:
                r = 0.0
                ifc_v = 0.0
            else:
                r = min(max(cmd, if_min), if_max)
                ifc_v = 0.0 if r == 0.0 else fc_current(r)
            for j in range(lo, hi):
                d = durs[j]
                i_l = loads[j]
                fuel_j = ifc_v * d
                if finite and fuel_j > tank_cap - consumed:
                    return None
                consumed += fuel_j
                raw = (r - i_l) * d
                if is_supercap:
                    delta = (raw * ce if raw > 0 else raw) - leak * d
                else:
                    delta = raw
                new = cur + delta
                if new > cap:
                    bled += new - cap
                    cur = cap
                elif new < 0.0:
                    deficit += -new
                    cur = 0.0
                else:
                    cur = new
                if_append(r)
                ifc_append(ifc_v)
                fuel_append(fuel_j)
                charge_append(cur)

    # Success: commit the exact sequential end state in one shot.
    controller.commit_kernel_run(
        n_slots,
        if_idle=if_idle_last,
        if_active=if_active_last,
        active_planned=last_planned,
        active_current_sum=acs_final,
        active_current_n=acn + n_slots,
        solutions=solutions,
        n_guards=guards,
        active_commit=(t_actives, active_preds, active_final),
        idle_commit=(
            (t_idles, idle_preds, idle_final)
            if controller.observes_idle
            else None
        ),
        frozen_idle_estimate=None if policy_feeds_idle else est_idle0,
    )
    # (Shared-predictor wiring: replay_policy already committed it.)
    return _KernelRun(
        np.asarray(if_l),
        np.asarray(ifc_l),
        np.asarray(fuel_l),
        np.asarray(charge_l),
        bled,
        deficit,
        None,
    )


# -- result assembly ---------------------------------------------------------


def _assemble_result(
    manager: "PowerManager",
    plan: TraceArrays,
    run: _KernelRun,
    max_deficit_fraction: float,
) -> SimulationResult:
    """Reduce kernel arrays to a ``SimulationResult`` and commit end state.

    Every ledger is a *sequential* float reduction (seeded cumsum or a
    per-slot Python loop) so each total equals the scalar simulator's
    accumulated value bit for bit.  The manager is left in exactly the
    state ``SlotSimulator.run`` leaves it in -- including when the
    deficit guard fires, which the scalar raises only after the whole
    trace has integrated.
    """
    source = manager.source
    fc = source.fc
    storage = source.storage
    n = plan.n_segments
    n_slots = plan.n_slots

    load_seg = plan.load_charge_seg
    delivered_seg = run.i_f * plan.duration

    total_fuel = float(_running_sums(source.total_fuel, run.fuel)[-1])
    total_delivered = float(
        _running_sums(source.total_delivered_charge, delivered_seg)[-1]
    )
    # Equal starting ledgers accumulate identical sequences, so the
    # totals can be shared instead of re-summed (fresh managers always
    # start every ledger at 0.0 -- the common case; the plan caches the
    # zero-seeded totals across a batch's policies).
    duration = plan.duration_total
    if source.total_time == 0.0:
        total_time = duration
    else:
        total_time = float(_running_sums(source.total_time, plan.duration)[-1])
    if source.total_load_charge == 0.0:
        total_load = plan.load_charge_total
    else:
        total_load = float(
            _running_sums(source.total_load_charge, load_seg)[-1]
        )
    if fc.tank.consumed == source.total_fuel:
        consumed = total_fuel
    else:
        consumed = float(_running_sums(fc.tank.consumed, run.fuel)[-1])

    starts = plan.slot_starts
    ends = plan.slot_ends
    astart = plan.active_start
    # Per-slot sums accumulate in segment order exactly like the
    # scalar's += loop (see _slot_sums); the property suite checks the
    # equality on randomized traces.
    slot_fuel = _slot_sums(plan, run.fuel)
    if n == 0:
        if_idle_l = [0.0] * n_slots
        if_active_l = if_idle_l
    elif run.const_i_f is not None:
        # Idle and active phases are both non-empty by construction,
        # so a constant-output run reports that output everywhere.
        if_idle_l = [run.const_i_f] * n_slots
        if_active_l = if_idle_l
    else:
        # Idle phase is [start, astart), active is [astart, end); both
        # are non-empty by construction, but mirror the scalar's
        # "last executed segment, else 0.0" guards all the same.
        if_idle_l = np.where(
            astart > starts, run.i_f[np.maximum(astart - 1, 0)], 0.0
        ).tolist()
        if_active_l = np.where(ends > astart, run.i_f[ends - 1], 0.0).tolist()
    storage_end = run.charges[ends]

    n_sleeps = plan.n_sleeps
    n_aborted = plan.n_aborted
    # tuple.__new__ directly: SlotResult._make adds a Python frame and a
    # length check per row, and at one row per slot per run this
    # construction is a top-three profile entry for whole batches.  The
    # zip of eight equal-length columns makes the arity correct by
    # construction.
    slot_results = list(
        map(
            tuple.__new__,
            _repeat(SlotResult),
            zip(
                range(n_slots),
                plan.slept_list,
                plan.aborted_list,
                slot_fuel.tolist(),
                plan.slot_load_list,
                if_idle_l,
                if_active_l,
                storage_end.tolist(),
            ),
        )
    )

    # Commit the manager end state before the deficit guard can raise,
    # mirroring the scalar path (which mutates throughout the run).
    if n:
        fc._i_f = (
            run.const_i_f if run.const_i_f is not None else float(run.i_f[-1])
        )
    fc.tank._consumed = consumed
    storage._charge = float(run.charges[-1])
    storage.bled_charge = run.bled
    storage.deficit_charge = run.deficit
    source.total_fuel = total_fuel
    source.total_load_charge = total_load
    source.total_time = total_time
    source.total_delivered_charge = total_delivered
    if run.recharging is not None:
        manager.controller._recharging = run.recharging

    threshold = source.total_load_charge * max_deficit_fraction
    if storage.deficit_charge > threshold:
        raise SimulationError(
            f"{manager.name}: storage deficit "
            f"{storage.deficit_charge:.2f} A-s exceeds "
            f"{100 * max_deficit_fraction:.0f}% of load -- "
            "the source is undersized for this workload"
        )

    return SimulationResult(
        name=manager.name,
        fuel=total_fuel,
        load_charge=total_load,
        delivered_charge=total_delivered,
        duration=duration,
        bled=run.bled,
        deficit=run.deficit,
        n_slots=plan.n_slots,
        n_sleeps=n_sleeps,
        n_aborted_sleeps=n_aborted,
        wakeup_latency=n_sleeps * manager.device.t_wu,
        slots=slot_results,
        recorder=None,
    )


def _simulate_fast_planned(
    manager: "PowerManager",
    trace: "LoadTrace",
    plan: TraceArrays,
    max_deficit_fraction: float,
    fc_seeds: tuple[float, float] | None = None,
) -> SimulationResult | None:
    """Kernel + assembly for an already-compiled plan (no eligibility).

    ``fc_seeds`` carries the FC-DPM predictor estimates captured before
    the policy replay (see :func:`_fc_scan_seeds`); required when the
    controller is an ``FCDPMController``.  Returns None when a finite
    fuel tank would deplete mid-run; the caller owns the scalar
    fallback (and any state restoration).
    """
    source = manager.source
    controller = manager.controller
    controller.start_run(source.storage.charge, source.storage.capacity)
    controller_type = type(controller)
    if controller_type is ASAPDPMController:
        run = _run_asap(manager, plan)
    elif controller_type is FCDPMController:
        run = _run_fc(manager, plan, trace, fc_seeds)
    else:
        commands = _controller_commands(manager, plan, trace)
        run = _run_from_plan(manager, plan, commands)
    if run is None:
        return None
    return _assemble_result(manager, plan, run, max_deficit_fraction)


# -- public API --------------------------------------------------------------


def simulate_fast(
    manager: "PowerManager",
    trace: "LoadTrace",
    *,
    record: bool = False,
    max_deficit_fraction: float = 0.05,
    max_segment: float | None = None,
) -> SimulationResult:
    """Simulate ``trace`` under ``manager``: the vectorized drop-in.

    Returns a :class:`~repro.sim.slotsim.SimulationResult` equal (``==``,
    every field) to ``SlotSimulator(manager, ...).run(trace)`` and
    leaves the manager in the same end state.  Configurations the array
    kernel cannot represent -- adaptive controllers, non-reference
    plants, recording runs (see :func:`fast_path_ineligibility`) -- run
    the scalar simulator transparently: never a wrong answer, only a
    slower one.
    """
    if max_deficit_fraction < 0:
        raise SimulationError("max_deficit_fraction cannot be negative")
    if max_segment is not None and max_segment <= 0:
        raise SimulationError("max_segment must be positive")
    reason = fast_path_ineligibility(manager, record=record)
    if reason is not None:
        if OBS.enabled:
            OBS.metrics.counter("sim.route", path="scalar").inc()
            OBS.metrics.counter(
                "sim.fast_ineligible", reason=_reason_key(reason)
            ).inc()
        with OBS.span(
            "sim.simulate", manager=manager.name, route="scalar"
        ):
            return SlotSimulator(
                manager,
                record=record,
                max_deficit_fraction=max_deficit_fraction,
                max_segment=max_segment,
            ).run(trace)
    with OBS.span("sim.simulate", manager=manager.name, route="fast") as span:
        snapshot = None
        if math.isfinite(manager.source.fc.tank.capacity):
            # A finite tank can force a mid-run DepletedError that only
            # the scalar path reports with per-segment context; snapshot
            # the stateful pieces so the rerun sees untouched decisions.
            # (Default tanks are bottomless: zero overhead there.)
            snapshot = copy.deepcopy((manager.policy, manager.controller))
        fc_seeds = _fc_scan_seeds(manager)
        decisions = replay_policy(manager.policy, trace)
        plan = plan_trace_arrays(
            manager.device,
            trace,
            decisions,
            max_segment=max_segment,
            # The lookahead columns are only read by the generic replay,
            # which derives them on demand; skipping them here keeps the
            # compile step off the critical path's profile.
            phase_context=False,
        )
        result = _simulate_fast_planned(
            manager, trace, plan, max_deficit_fraction, fc_seeds=fc_seeds
        )
        if result is not None:
            if OBS.enabled:
                OBS.metrics.counter("sim.route", path="fast").inc()
            return result
        if snapshot is not None:
            manager.policy, manager.controller = snapshot
        if OBS.enabled:
            span.set(route="scalar")
            OBS.metrics.counter("sim.route", path="scalar").inc()
            OBS.metrics.counter(
                "sim.fast_ineligible", reason="tank-depleted"
            ).inc()
        return SlotSimulator(
            manager,
            record=record,
            max_deficit_fraction=max_deficit_fraction,
            max_segment=max_segment,
        ).run(trace)


def _parse_policy_spec(spec) -> None:
    """Validate a ``simulate_batch`` policy spec; raises ``ConfigurationError``."""
    from ..scenario.spec import _POLICY_KINDS

    if not isinstance(spec, str):
        raise ConfigurationError(
            f"policy spec must be a string, got {type(spec).__name__}"
        )
    if spec.startswith("static:"):
        try:
            float(spec.split(":", 1)[1])
        except ValueError:
            raise ConfigurationError(
                f"bad static policy spec {spec!r}; expected 'static:<IF amps>'"
            ) from None
        return
    if spec not in _POLICY_KINDS:
        raise ConfigurationError(
            f"unknown policy {spec!r}; expected one of {_POLICY_KINDS} "
            "or 'static:<IF amps>'"
        )


def _policy_manager(scenario: "Scenario", spec: str) -> "PowerManager":
    """Build the scenario's manager with its policy swapped to ``spec``.

    ``spec`` is a registered policy kind (``conv-dpm`` / ``asap-dpm`` /
    ``fc-dpm``) or ``static:<IF>`` -- a fixed FC setting riding on the
    conv-dpm device policy.  The manager is renamed to the spec so batch
    results key on the policy, not the scenario.
    """
    from dataclasses import replace

    _parse_policy_spec(spec)
    if spec.startswith("static:"):
        i_f = float(spec.split(":", 1)[1])
        base = replace(scenario, policy=replace(scenario.policy, kind="conv-dpm"))
        mgr = base.build_manager()
        # StaticController validates the range (ConfigurationError if not).
        mgr.controller = StaticController(mgr.controller.model, i_f)
    else:
        mgr = replace(
            scenario, policy=replace(scenario.policy, kind=spec)
        ).build_manager()
    mgr.name = spec
    return mgr


# -- parallel batch ----------------------------------------------------------


#: TraceArrays fields carried through shared memory, in layout order.
#: Only the fast-path shape (``phase_context=False``) is transported:
#: the lookahead columns are never compiled for batch plans.
_PLAN_FIELDS = (
    "duration",
    "i_load",
    "kind",
    "slot_bounds",
    "active_start",
    "slept",
    "aborted",
)


def _plan_to_arrays(plan: TraceArrays) -> dict[str, np.ndarray]:
    """The shared-memory transport form of a fast-path plan."""
    return {name: getattr(plan, name) for name in _PLAN_FIELDS}


def _plan_from_arrays(arrays: dict[str, np.ndarray]) -> TraceArrays:
    """Rebuild a plan from :func:`_plan_to_arrays` output (or shm views).

    The kernel never writes into plan columns, so read-only shared
    views drop straight in; the cached per-plan invariants recompute
    locally in each worker.
    """
    return TraceArrays(
        phase_duration=None,
        phase_demand=None,
        **{name: arrays[name] for name in _PLAN_FIELDS},
    )


def _stack_plan_group(
    plans: list[TraceArrays], seeds: list[int]
) -> dict[str, np.ndarray]:
    """Pack a whole batch of per-seed plans into one shm group.

    Every plan column concatenates row-major (index columns stay
    row-local -- workers carve rows back out by offset, so no global
    renumbering happens in either direction), plus the bookkeeping
    columns a worker needs to find its row: ``seeds``, ``seg_offsets``
    and ``slot_counts``.  One segment with a handful of large buffers
    ships far cheaper than one group of small buffers per seed.
    """
    out = {
        name: np.concatenate([getattr(p, name) for p in plans])
        for name in _PLAN_FIELDS
    }
    seg_counts = np.array([p.n_segments for p in plans], dtype=np.intp)
    out["seg_offsets"] = np.concatenate(([0], np.cumsum(seg_counts)))
    out["slot_counts"] = np.array([p.n_slots for p in plans], dtype=np.intp)
    out["seeds"] = np.asarray(seeds, dtype=np.int64)
    return out


def _stacked_plan_row(payload: dict, handle, seed: int) -> TraceArrays:
    """One seed's plan, sliced zero-copy out of the stacked shm group.

    The attached group and its row index are cached in the worker's
    payload copy; per-seed cost is then eight array slices.  The row
    views are bit-identical to the per-seed plan the coordinator
    compiled (concatenate-then-slice is the identity).
    """
    cache = payload.get("_plan_stack")
    if cache is None:
        group = attach_group(handle)
        row_of = {int(s): r for r, s in enumerate(group["seeds"].tolist())}
        slot_offsets = np.concatenate(([0], np.cumsum(group["slot_counts"])))
        cache = payload["_plan_stack"] = (group, row_of, slot_offsets)
    group, row_of, slot_offsets = cache
    r = row_of[seed]
    lo = int(group["seg_offsets"][r])
    hi = int(group["seg_offsets"][r + 1])
    slo = int(slot_offsets[r])
    shi = int(slot_offsets[r + 1])
    return TraceArrays(
        duration=group["duration"][lo:hi],
        i_load=group["i_load"][lo:hi],
        kind=group["kind"][lo:hi],
        phase_duration=None,
        phase_demand=None,
        # Concatenated bounds keep each row's n_slots+1 entries, hence
        # the +r / +r+1 row padding in the slice.
        slot_bounds=group["slot_bounds"][slo + r : shi + r + 1],
        active_start=group["active_start"][slo:shi],
        slept=group["slept"][slo:shi],
        aborted=group["aborted"][slo:shi],
    )


def _batch_seed_worker(seed: int) -> tuple[int, dict[str, SimulationResult]]:
    """One seed's full policy sweep, driven by the shared batch payload.

    Module-level so the process pool can pickle it; reads everything --
    scenario, specs, traces, plan handles -- from
    :func:`~repro.runtime.parallel.get_shared`, attaching the seed's
    compiled plan from shared memory instead of unpickling it.  The
    per-policy control flow mirrors the serial loop in
    :func:`simulate_batch` exactly (manager reuse via ``reset``, FC-DPM
    seed capture before any replay, scalar fallbacks), so results are
    bit-identical to a serial run.
    """
    payload = get_shared()
    scenario = payload["scenario"]
    fast = payload["fast"]
    max_deficit_fraction = payload["max_deficit_fraction"]
    trace = payload["traces"][seed]
    handle = payload["plans"].get("stacked")
    # Worker-local manager cache, living in this process's payload copy
    # (dies with the pool; the serial fallback's copy dies with the map).
    managers = payload.setdefault("_managers", {})
    plan: TraceArrays | None = None
    per_policy: dict[str, SimulationResult] = {}
    for spec in payload["specs"]:
        entry = managers.get(spec) if fast else None
        if entry is None:
            mgr = _policy_manager(scenario, spec)
        else:
            mgr, initial_charge = entry
            mgr.reset(initial_charge)
        reason = fast_path_ineligibility(mgr) if fast else "fast=False"
        if reason is not None:
            if OBS.enabled:
                OBS.metrics.counter("sim.route", path="scalar").inc()
                if fast:
                    OBS.metrics.counter(
                        "sim.fast_ineligible", reason=_reason_key(reason)
                    ).inc()
            per_policy[mgr.name] = SlotSimulator(
                mgr, max_deficit_fraction=max_deficit_fraction
            ).run(trace)
            continue
        if entry is None:
            managers[spec] = (mgr, mgr.source.storage.charge)
        fc_seeds = _fc_scan_seeds(mgr)
        if plan is None:
            if handle is not None:
                plan = _stacked_plan_row(payload, handle, seed)
            else:  # pragma: no cover - coordinator always ships a plan
                plan = plan_trace_arrays(
                    mgr.device,
                    trace,
                    replay_policy(mgr.policy, trace),
                    phase_context=False,
                )
        result = _simulate_fast_planned(
            mgr, trace, plan, max_deficit_fraction, fc_seeds=fc_seeds
        )
        if result is None:
            if OBS.enabled:
                OBS.metrics.counter("sim.route", path="scalar").inc()
                OBS.metrics.counter(
                    "sim.fast_ineligible", reason="tank-depleted"
                ).inc()
            result = SlotSimulator(
                _policy_manager(scenario, spec),
                max_deficit_fraction=max_deficit_fraction,
            ).run(trace)
        elif OBS.enabled:
            OBS.metrics.counter("sim.route", path="fast").inc()
        per_policy[mgr.name] = result
    return seed, per_policy


def _simulate_batch_parallel(
    scenario: "Scenario",
    seed_list: list[int],
    specs: list[str],
    *,
    fast: bool,
    traces: dict | None,
    max_deficit_fraction: float,
    workers: int,
) -> dict[int, dict[str, SimulationResult]]:
    """Fan one batch out across processes, plans in shared memory.

    The coordinator builds every trace and compiles every eligible
    seed's plan (one policy replay per seed, exactly as the serial
    loop's first eligible policy would), packs the plan arrays into one
    shared-memory segment, and ships workers only the scenario, the
    traces, and small array handles.  Workers attach the plan buffers
    zero-copy; :class:`~repro.runtime.shm.SharedArrayStore` falls back
    to inline pickling where shared memory is unavailable, and
    :class:`~repro.runtime.parallel.ParallelMap` falls back to serial
    execution on pool failures -- either way the results are identical.
    The segment is unlinked in a ``finally``, so no ``/dev/shm`` entry
    outlives the call.
    """
    built: dict[int, "LoadTrace"] = {}
    for seed in seed_list:
        trace = None if traces is None else traces.get(seed)
        built[seed] = trace if trace is not None else scenario.build_trace(seed)

    groups: dict[str, dict[str, np.ndarray]] = {}
    if fast:
        probe = None
        for spec in specs:
            mgr = _policy_manager(scenario, spec)
            if fast_path_ineligibility(mgr) is None:
                probe = (mgr, mgr.source.storage.charge)
                break
        if probe is not None:
            mgr, initial_charge = probe
            plans = []
            for seed in seed_list:
                mgr.reset(initial_charge)
                plans.append(
                    plan_trace_arrays(
                        mgr.device,
                        built[seed],
                        replay_policy(mgr.policy, built[seed]),
                        phase_context=False,
                    )
                )
            # One stacked segment for the whole batch: a few large
            # buffers instead of one small group per seed.
            groups["stacked"] = _stack_plan_group(plans, seed_list)
    store = SharedArrayStore.create(groups)
    payload = {
        "scenario": scenario,
        "specs": list(specs),
        "fast": fast,
        "max_deficit_fraction": max_deficit_fraction,
        "traces": built,
        "plans": store.handles,
    }
    try:
        pairs = ParallelMap(workers=workers).map(
            _batch_seed_worker, seed_list, shared=payload
        )
    finally:
        store.dispose()
    return dict(pairs)


def simulate_batch(
    scenario: "Scenario | str",
    seeds,
    policies=None,
    *,
    fast: bool = True,
    stacked: bool | None = None,
    traces: dict | None = None,
    max_deficit_fraction: float = 0.05,
    workers: int | None = 1,
) -> dict[int, dict[str, SimulationResult]]:
    """Monte-Carlo sweep: every (seed, policy) run of one scenario.

    Parameters
    ----------
    scenario:
        A :class:`~repro.scenario.spec.Scenario` or a registered name.
    seeds:
        Trace seeds; must be non-empty and free of duplicates (results
        are keyed by seed, so a repeated seed would silently collapse).
    policies:
        Policy specs (see :func:`_policy_manager`); defaults to the
        scenario's own policy kind.
    fast:
        Route eligible runs through the array kernel (default).  The
        trace compilation is shared across a seed's eligible policies
        -- the device-side DPM decisions depend only on the trace and
        the shared predictor configuration, so the plan is computed
        once per seed.  ``fast=False`` is the scalar reference path
        (one ``SlotSimulator`` per run) used by the equivalence tests.
    stacked:
        Route the whole batch through the stacked 2D kernel
        (:mod:`~repro.sim.stacked`): per-seed plans pack into padded
        ``seeds x segments`` arrays and the trace-functional policies
        sweep every row at once, bit-identically to the serial loop.
        ``None`` (default) auto-routes multi-seed in-process batches
        whose every spec is stacked-eligible and falls back to the
        per-seed loop otherwise (counted per spec under
        ``sim.batch_ineligible``); ``True`` forces the stacked route
        (raising ``ConfigurationError`` if any spec is ineligible or
        ``fast=False``, and overriding ``workers`` -- the stacked
        sweep is in-process); ``False`` opts out.
    traces:
        Optional pre-built ``{seed: LoadTrace}``; seeds not present are
        generated from the scenario.  Lets callers amortize trace
        synthesis (the dominant per-seed cost) across both paths.
    max_deficit_fraction:
        Deficit guard, as in :class:`~repro.sim.slotsim.SlotSimulator`.
    workers:
        Process fan-out over seeds.  The default ``1`` runs in-process;
        ``None``/``0`` uses every available core.  With more than one
        worker (and seed) the batch dispatches through
        :func:`_simulate_batch_parallel`: plans compile once in the
        coordinator and ride shared memory to the workers.  Results are
        identical at any worker count.

    Returns ``{seed: {policy_spec: SimulationResult}}``.  Results are
    identical between ``fast=True`` and ``fast=False``.
    """
    from ..scenario import get_scenario

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    seed_list = [int(s) for s in seeds]
    if not seed_list:
        raise ConfigurationError("simulate_batch needs at least one seed")
    if len(set(seed_list)) != len(seed_list):
        dupes = sorted({s for s in seed_list if seed_list.count(s) > 1})
        raise ConfigurationError(
            f"simulate_batch got duplicate seeds {dupes}: results are "
            "keyed by seed, so repeated seeds would silently collapse"
        )
    specs = list(policies) if policies is not None else [scenario.policy.kind]
    if not specs:
        raise ConfigurationError("simulate_batch needs at least one policy")
    for spec in specs:
        _parse_policy_spec(spec)
    if stacked and not fast:
        raise ConfigurationError("stacked=True requires fast=True")
    n_workers = resolve_workers(workers)
    if n_workers > 1 and len(seed_list) > 1 and stacked is not True:
        with OBS.span(
            "sim.batch",
            scenario=scenario.name,
            n_seeds=len(seed_list),
            n_policies=len(specs),
            workers=n_workers,
            route="parallel",
        ):
            if OBS.enabled:
                OBS.metrics.counter("sim.batch_route", path="parallel").inc()
            return _simulate_batch_parallel(
                scenario,
                seed_list,
                specs,
                fast=fast,
                traces=traces,
                max_deficit_fraction=max_deficit_fraction,
                workers=n_workers,
            )

    results: dict[int, dict[str, SimulationResult]] = {}
    # Eligible managers are built once and reset() between seeds -- a
    # reset manager is state-identical to a fresh build (ledgers, tank,
    # storage level, policy/controller learning state), and rebuilding
    # the whole plant per (seed, policy) is pure overhead in a sweep.
    # Ineligible specs keep fresh builds: the scalar path mutates
    # recorder/history state the kernel never touches.
    cached: dict[str, tuple["PowerManager", float]] = {}
    with OBS.span(
        "sim.batch",
        scenario=scenario.name,
        n_seeds=len(seed_list),
        n_policies=len(specs),
    ) as span:
        if fast and stacked is not False and (stacked or len(seed_list) > 1):
            # Stacked 2D route: one kernel sweep over the whole batch.
            # Imported lazily -- sim.stacked imports this module.
            from .stacked import (
                _stacked_reason_key,
                simulate_batch_stacked,
                stacked_batch_ineligibility,
            )

            managers = {spec: _policy_manager(scenario, spec) for spec in specs}
            reasons = {}
            for spec in specs:
                reason = stacked_batch_ineligibility(managers[spec])
                if reason is not None:
                    reasons[spec] = reason
            if not reasons:
                return simulate_batch_stacked(
                    scenario,
                    seed_list,
                    specs,
                    managers,
                    max_deficit_fraction=max_deficit_fraction,
                    traces=traces,
                    span=span,
                )
            if stacked:
                detail = "; ".join(f"{s}: {r}" for s, r in reasons.items())
                raise ConfigurationError(
                    f"stacked=True but the batch is not stacked-eligible -- {detail}"
                )
            # Auto mode: fall back to the per-seed loop, one reason
            # count per ineligible spec plus the rows that fell back.
            span.set(route="loop", fallback_rows=len(seed_list))
            if OBS.enabled:
                OBS.metrics.counter("sim.batch_route", path="loop").inc()
                for reason in reasons.values():
                    OBS.metrics.counter(
                        "sim.batch_ineligible",
                        reason=_stacked_reason_key(reason),
                    ).inc()
                OBS.metrics.counter("sim.batch_fallback_rows").inc(
                    len(seed_list)
                )
        for seed in seed_list:
            trace = None if traces is None else traces.get(seed)
            if trace is None:
                trace = scenario.build_trace(seed)
            per_policy: dict[str, SimulationResult] = {}
            plan: TraceArrays | None = None
            for spec in specs:
                entry = cached.get(spec) if fast else None
                if entry is None:
                    mgr = _policy_manager(scenario, spec)
                else:
                    mgr, initial_charge = entry
                    mgr.reset(initial_charge)
                reason = fast_path_ineligibility(mgr) if fast else "fast=False"
                if reason is not None:
                    if OBS.enabled:
                        OBS.metrics.counter("sim.route", path="scalar").inc()
                        if fast:
                            OBS.metrics.counter(
                                "sim.fast_ineligible", reason=_reason_key(reason)
                            ).inc()
                    per_policy[mgr.name] = SlotSimulator(
                        mgr, max_deficit_fraction=max_deficit_fraction
                    ).run(trace)
                    continue
                if entry is None:
                    cached[spec] = (mgr, mgr.source.storage.charge)
                # FC-DPM scan seeds must predate this manager's policy
                # replay (the default wiring shares the idle predictor).
                fc_seeds = _fc_scan_seeds(mgr)
                if plan is None:
                    # First eligible policy replays its (fresh) device-
                    # side policy to compile the plan; later eligible
                    # managers reuse it -- their own policy objects stay
                    # fresh, an internal detail batch results never
                    # observe.
                    plan = plan_trace_arrays(
                        mgr.device,
                        trace,
                        replay_policy(mgr.policy, trace),
                        phase_context=False,
                    )
                result = _simulate_fast_planned(
                    mgr, trace, plan, max_deficit_fraction, fc_seeds=fc_seeds
                )
                if result is None:
                    # Finite tank depleted mid-run: rerun a fresh manager
                    # on the scalar path for the exact DepletedError
                    # context.
                    if OBS.enabled:
                        OBS.metrics.counter("sim.route", path="scalar").inc()
                        OBS.metrics.counter(
                            "sim.fast_ineligible", reason="tank-depleted"
                        ).inc()
                    result = SlotSimulator(
                        _policy_manager(scenario, spec),
                        max_deficit_fraction=max_deficit_fraction,
                    ).run(trace)
                elif OBS.enabled:
                    OBS.metrics.counter("sim.route", path="fast").inc()
                per_policy[mgr.name] = result
            results[seed] = per_policy
            if OBS.enabled:
                OBS.metrics.counter("sim.batch_rows_completed").inc()
    return results
