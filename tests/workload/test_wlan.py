"""WLAN workload generator tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.wlan import WlanModel, generate_wlan_trace


class TestModel:
    def test_defaults_valid(self):
        WlanModel()

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            WlanModel(session_gap_mean=0.0)
        with pytest.raises(ConfigurationError):
            WlanModel(think_sigma=-0.1)


class TestGeneration:
    def test_deterministic(self):
        assert generate_wlan_trace(seed=1) == generate_wlan_trace(seed=1)
        assert generate_wlan_trace(seed=1) != generate_wlan_trace(seed=2)

    def test_duration_covered(self):
        trace = generate_wlan_trace(duration_s=900.0)
        assert trace.duration >= 900.0

    def test_heavy_tailed_idles(self):
        # Session gaps dominate the tail: max idle far beyond the median.
        trace = generate_wlan_trace(duration_s=3600.0, seed=3)
        idles = np.array([s.t_idle for s in trace])
        assert idles.max() > 10 * np.median(idles)

    def test_session_structure(self):
        # Both short think-times and long session gaps must be present.
        trace = generate_wlan_trace(duration_s=3600.0, seed=4)
        idles = np.array([s.t_idle for s in trace])
        assert (idles < 10.0).sum() > len(idles) * 0.4
        assert (idles > 60.0).sum() >= 3

    def test_min_active_enforced(self):
        trace = generate_wlan_trace(duration_s=600.0, min_active=0.05)
        assert min(s.t_active for s in trace) >= 0.05

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            generate_wlan_trace(duration_s=0.0)


class TestPoliciesOnWlan:
    """Heavy tails expose FC-DPM's one structural weakness.

    The paper's FC-DPM retargets only at power-state transitions; an
    idle period that runs 10x its prediction leaves the FC over-
    delivering into a full storage -- bled fuel.  With periodic
    re-decision points (``max_segment``) and the controller's storage
    saturation guard, the ordering is restored.
    """

    @staticmethod
    def _run(max_segment):
        from repro.core.manager import PowerManager
        from repro.devices.camcorder import camcorder_device_params
        from repro.sim.slotsim import SlotSimulator

        trace = generate_wlan_trace(duration_s=1200.0, seed=5)
        dev = camcorder_device_params()
        out = {}
        for maker in (PowerManager.conv_dpm, PowerManager.asap_dpm,
                      PowerManager.fc_dpm):
            mgr = maker(dev, storage_capacity=6.0, storage_initial=3.0)
            out[mgr.name] = SlotSimulator(mgr, max_segment=max_segment).run(trace)
        return out

    def test_paper_faithful_fc_dpm_bleeds_on_heavy_tails(self):
        results = self._run(max_segment=None)
        # The documented limitation: without mid-idle correction the
        # mispredicted long idles burn fuel through the bleeder.
        assert results["fc-dpm"].bled > 50.0
        assert results["fc-dpm"].fuel > results["asap-dpm"].fuel

    def test_guarded_fc_dpm_restores_the_ordering(self):
        results = self._run(max_segment=5.0)
        assert results["fc-dpm"].bled < 20.0
        assert (
            results["fc-dpm"].fuel
            < results["asap-dpm"].fuel
            < results["conv-dpm"].fuel
        )
