"""TraceBuilder tests."""

import pytest

from repro.errors import ConfigurationError, TraceError
from repro.workload.builder import TraceBuilder
from repro.workload.trace import LoadTrace, TaskSlot


class TestBuilder:
    def test_single_slot(self):
        trace = TraceBuilder().slot(idle=10.0, active=3.0, current=1.2).build()
        assert len(trace) == 1
        assert trace[0] == TaskSlot(10.0, 3.0, 1.2)

    def test_chaining(self):
        trace = (
            TraceBuilder("x")
            .slot(10.0, 3.0, 1.2)
            .slot(8.0, 2.0, 1.0)
            .build()
        )
        assert len(trace) == 2
        assert trace.name == "x"

    def test_burst(self):
        trace = TraceBuilder().burst(n=4, idle=2.0, active=1.0, current=0.9).build()
        assert len(trace) == 4
        assert all(s.t_idle == 2.0 for s in trace)

    def test_quiet_extends_next_idle(self):
        trace = (
            TraceBuilder()
            .slot(5.0, 2.0, 1.0)
            .quiet(60.0)
            .slot(5.0, 2.0, 1.0)
            .build()
        )
        assert trace[1].t_idle == pytest.approx(65.0)

    def test_trailing_quiet_rejected(self):
        builder = TraceBuilder().slot(5.0, 2.0, 1.0).quiet(30.0)
        with pytest.raises(TraceError):
            builder.build()

    def test_repeat(self):
        trace = TraceBuilder().slot(5.0, 2.0, 1.0).repeat(3).build()
        assert len(trace) == 3

    def test_repeat_with_pending_quiet_rejected(self):
        builder = TraceBuilder().slot(5.0, 2.0, 1.0).quiet(10.0)
        with pytest.raises(ConfigurationError):
            builder.repeat(2)

    def test_splice(self):
        base = LoadTrace([TaskSlot(5.0, 2.0, 1.0)], name="base")
        trace = TraceBuilder().slot(9.0, 3.0, 1.2).splice(base).build()
        assert len(trace) == 2
        assert trace[1].t_idle == 5.0

    def test_len(self):
        builder = TraceBuilder().burst(3, 2.0, 1.0, 0.5)
        assert len(builder) == 3

    def test_docstring_example(self):
        trace = (
            TraceBuilder("session")
            .slot(idle=12.0, active=3.0, current=1.2)
            .repeat(5)
            .burst(n=4, idle=2.0, active=1.0, current=0.9)
            .quiet(60.0)
            .slot(idle=1.0, active=2.0, current=1.1)
            .build()
        )
        assert len(trace) == 10
        assert trace[-1].t_idle == pytest.approx(61.0)

    def test_validation_bubbles_from_taskslot(self):
        with pytest.raises(TraceError):
            TraceBuilder().slot(-1.0, 2.0, 1.0)
        with pytest.raises(ConfigurationError):
            TraceBuilder().burst(0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            TraceBuilder().quiet(-5.0)
        with pytest.raises(ConfigurationError):
            TraceBuilder().slot(1.0, 1.0, 1.0).repeat(0)
