"""Synthetic MPEG trace generator tests (Experiment-1 statistics)."""

import numpy as np
import pytest

from repro.config import CamcorderConstants
from repro.errors import ConfigurationError
from repro.workload.mpeg import MpegEncoderModel, generate_mpeg_trace


class TestEncoderModel:
    def test_gop_duration(self):
        m = MpegEncoderModel(fps=30.0, gop_length=15)
        assert m.gop_duration == pytest.approx(0.5)

    def test_gop_size_scales_with_complexity(self):
        m = MpegEncoderModel()
        assert m.gop_size_mb(1.2) == pytest.approx(1.2 * m.gop_size_mb(1.0))

    def test_gop_size_rejects_nonpositive_complexity(self):
        with pytest.raises(ConfigurationError):
            MpegEncoderModel().gop_size_mb(0.0)

    def test_mean_rate_covers_papers_idle_band(self):
        # Fill times 16 MB / rate must span the paper's 8-20 s band.
        m = MpegEncoderModel()
        fastest = 16.0 / m.mean_rate_mb_s(m.complexity_high)
        slowest = 16.0 / m.mean_rate_mb_s(m.complexity_low)
        assert fastest < 10.0
        assert slowest > 18.0

    def test_rejects_bad_structure(self):
        with pytest.raises(ConfigurationError):
            MpegEncoderModel(gop_length=0)
        with pytest.raises(ConfigurationError):
            MpegEncoderModel(i_to_p=0.2, i_to_b=0.5)  # b > p
        with pytest.raises(ConfigurationError):
            MpegEncoderModel(ar_coeff=1.0)


class TestTraceGeneration:
    def test_deterministic_given_seed(self):
        a = generate_mpeg_trace(seed=7)
        b = generate_mpeg_trace(seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        assert generate_mpeg_trace(seed=1) != generate_mpeg_trace(seed=2)

    def test_duration_covers_28_minutes(self):
        trace = generate_mpeg_trace()
        assert trace.duration >= 28 * 60
        assert trace.duration < 30 * 60

    def test_idle_lengths_in_paper_band(self):
        trace = generate_mpeg_trace()
        idles = np.array([s.t_idle for s in trace])
        cam = CamcorderConstants()
        assert idles.min() >= cam.idle_min
        assert idles.max() <= cam.idle_max
        # The band must actually be used, not collapsed to one end.
        assert idles.std() > 1.0
        assert 10.0 < idles.mean() < 16.0

    def test_active_period_is_3_03s(self):
        trace = generate_mpeg_trace()
        assert all(s.t_active == pytest.approx(3.0303, abs=1e-3) for s in trace)

    def test_active_current_is_run_power(self):
        trace = generate_mpeg_trace()
        assert all(s.i_active == pytest.approx(14.65 / 12) for s in trace)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            generate_mpeg_trace(duration_s=0.0)

    def test_short_trace(self):
        trace = generate_mpeg_trace(duration_s=60.0)
        assert trace.duration >= 60.0
        assert len(trace) >= 2

    def test_scene_correlation_present(self):
        # Consecutive idle gaps within a scene should correlate: the
        # lag-1 autocorrelation must be clearly positive.
        trace = generate_mpeg_trace(seed=3)
        idles = np.array([s.t_idle for s in trace])
        x, y = idles[:-1], idles[1:]
        r = np.corrcoef(x, y)[0, 1]
        assert r > 0.2
