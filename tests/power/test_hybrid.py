"""Hybrid power source integration tests (Fig. 1 charge conservation)."""

import pytest

from repro.errors import RangeError
from repro.fuelcell.system import FCSystem
from repro.power.hybrid import HybridPowerSource
from repro.power.storage import SuperCapacitor


@pytest.fixture
def source() -> HybridPowerSource:
    return HybridPowerSource(
        fc=FCSystem.paper_system(),
        storage=SuperCapacitor(capacity=200.0, initial_charge=0.0),
    )


class TestStep:
    def test_surplus_charges_storage(self, source):
        source.set_fc_output(0.5333)
        step = source.step(i_load=0.2, dt=20.0)
        # Ichg = IF - Ild = 0.333 A for 20 s = 6.67 A-s (paper Fig. 4(c)).
        assert step.storage_delta == pytest.approx((0.5333 - 0.2) * 20, rel=1e-3)
        assert source.storage.charge == pytest.approx(6.67, abs=0.01)

    def test_shortfall_discharges_storage(self, source):
        source.set_fc_output(0.5333)
        source.step(0.2, 20.0)
        step = source.step(i_load=1.2, dt=10.0)
        assert step.storage_delta == pytest.approx(-(1.2 - 0.5333) * 10, rel=1e-3)
        assert source.storage.charge == pytest.approx(0.0, abs=0.01)

    def test_motivational_slot_fuel(self, source):
        # Full Fig. 4(c) slot: fuel = 13.45 A-s.
        source.set_fc_output(16 / 30)
        source.step(0.2, 20.0)
        source.step(1.2, 10.0)
        assert source.total_fuel == pytest.approx(13.45, abs=0.01)

    def test_fuel_accumulates_with_ifc_not_if(self, source):
        source.set_fc_output(1.2)
        step = source.step(1.2, 10.0)
        assert step.i_fc == pytest.approx(1.306, abs=0.01)
        assert step.fuel == pytest.approx(13.06, abs=0.1)

    def test_rejects_negative_load(self, source):
        with pytest.raises(RangeError):
            source.step(-0.1, 1.0)

    def test_rejects_negative_dt(self, source):
        with pytest.raises(RangeError):
            source.step(0.1, -1.0)

    def test_history_recorded_when_enabled(self, source):
        source.record_history = True
        source.step(0.2, 5.0)
        source.step(0.4, 5.0)
        assert len(source.history) == 2
        assert source.history[0].i_load == 0.2

    def test_history_off_by_default(self, source):
        source.step(0.2, 5.0)
        assert not source.history

    def test_history_off_over_long_run(self, source):
        # Regression for the unbounded-memory default: 1000 slots of
        # stepping must leave the history empty unless a consumer
        # (the Recorder) opts in.
        source.set_fc_output(0.8)
        for _ in range(1000):
            source.step(0.4, 1.0)
        assert len(source.history) == 0


class TestLedger:
    def test_charge_conservation(self, source):
        # FC output = load + storage delta + bleed - deficit, every step.
        source.set_fc_output(0.8)
        for i_load, dt in ((0.2, 10.0), (1.2, 8.0), (0.4, 3.0)):
            step = source.step(i_load, dt)
            supplied = step.i_f * step.dt
            assert supplied == pytest.approx(
                i_load * dt + step.storage_delta + step.bled - step.deficit,
                abs=1e-9,
            )

    def test_bleed_when_storage_full(self):
        src = HybridPowerSource(
            fc=FCSystem.paper_system(),
            storage=SuperCapacitor(capacity=1.0, initial_charge=1.0),
        )
        src.set_fc_output(1.2)
        step = src.step(0.2, 10.0)
        assert step.bled == pytest.approx(10.0, abs=1e-9)

    def test_deficit_when_storage_empty(self):
        src = HybridPowerSource(
            fc=FCSystem.paper_system(),
            storage=SuperCapacitor(capacity=1.0, initial_charge=0.0),
        )
        src.set_fc_output(0.1)
        step = src.step(1.2, 10.0)
        assert step.deficit == pytest.approx(11.0, abs=1e-9)

    def test_delivered_energy(self, source):
        source.set_fc_output(0.5)
        source.step(0.5, 10.0)
        assert source.delivered_energy == pytest.approx(12.0 * 5.0)

    def test_average_fuel_rate(self, source):
        source.set_fc_output(1.2)
        source.step(1.2, 10.0)
        assert source.average_fuel_rate == pytest.approx(1.306, abs=0.01)

    def test_reset(self, source):
        source.step(0.5, 10.0)
        source.reset(storage_charge=2.0)
        assert source.total_fuel == 0.0
        assert source.total_time == 0.0
        assert source.storage.charge == 2.0
        assert not source.history
        assert source.fc.tank.consumed == 0.0

    def test_default_construction(self):
        src = HybridPowerSource()
        assert src.storage.capacity == pytest.approx(6.0)
        assert src.fc.v_out == 12.0
