"""Gap decomposition bench: where does FC-DPM's remaining fuel go?

Breaks FC-DPM's distance to the offline optimum into named pieces:

    fuel(FC-DPM)  -  fuel(oracle FC-DPM)   = prediction error
    fuel(oracle)  -  flat lower bound      = per-slot planning
"""

from repro.analysis.report import format_table
from repro.core.manager import PowerManager
from repro.core.oracle_controller import OracleFCDPMController
from repro.devices.camcorder import camcorder_device_params
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.sim.slotsim import SlotSimulator
from repro.workload.mpeg import generate_mpeg_trace


def test_bench_gap_decomposition(benchmark, emit):
    trace = generate_mpeg_trace(seed=2007)
    dev = camcorder_device_params()
    model = LinearSystemEfficiency()

    def run_all():
        predicted = SlotSimulator(
            PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        ).run(trace)
        oracle_mgr = PowerManager.fc_dpm(
            dev, storage_capacity=6.0, storage_initial=3.0
        )
        oracle_mgr.name = "oracle-fc-dpm"
        oracle_mgr.controller = OracleFCDPMController(model, trace, device=dev)
        oracle = SlotSimulator(oracle_mgr).run(trace)
        avg = predicted.load_charge / predicted.duration
        bound = model.fc_current(avg) * predicted.duration
        return predicted.fuel, oracle.fuel, bound

    predicted, oracle, bound = benchmark.pedantic(run_all, rounds=1,
                                                  iterations=1)
    rows = [
        ["stage", "fuel (A-s)", "gap vs bound (%)"],
        ["offline flat lower bound", f"{bound:.1f}", "0.0"],
        ["oracle FC-DPM (true slots)", f"{oracle:.1f}",
         f"{100 * (oracle / bound - 1):.1f}"],
        ["FC-DPM (predicted slots)", f"{predicted:.1f}",
         f"{100 * (predicted / bound - 1):.1f}"],
    ]
    emit(
        "decomposition",
        "GAP DECOMPOSITION -- FC-DPM's distance to the offline optimum\n"
        + format_table(rows)
        + "\nreading: per-slot planning (the Cend = Cini stability rule) "
        "costs a few percent; prediction error costs almost nothing on "
        "this workload -- the paper's design allocates its complexity "
        "exactly where it pays.",
    )
    assert bound <= oracle <= predicted + 1e-6
    assert predicted / bound < 1.10
