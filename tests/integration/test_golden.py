"""Golden-number regression tests.

Frozen expected values for every deterministic headline metric (exact
closed forms tight, trace-driven numbers with small drift bands).  Any
code change that moves these numbers must be deliberate -- update the
constants here *and* EXPERIMENTS.md together.
"""

import pytest

from repro.analysis.figures import fig4_motivational
from repro.analysis.tables import table2, table3
from repro.core.optimizer import solve_slot
from repro.core.setting import SlotProblem
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.fuelcell.stack import FCStack

#: Closed-form constants: must match to float precision / 4 digits.
GOLDEN_EXACT = {
    "eq11_flat_current": 16 / 30,
    "eq4_ifc_at_flat": 0.44834,
    "fig4_fc_fuel": 13.45009,
    "fig4_asap_fuel": 16.08009,
    "fig4_conv_fuel_eq4": 39.18367,
    "stack_voc": 18.2,
}

#: Trace-driven values at seed 2007 (drift band +-0.02).
GOLDEN_SEEDED = {
    "table2_asap": 0.400,
    "table2_fc": 0.339,
    "table3_asap": 0.436,
    "table3_fc": 0.392,
}


class TestExactGoldens:
    def test_eq11(self):
        p = SlotProblem(20, 10, 0.2, 1.2, c_max=200.0)
        s = solve_slot(p, LinearSystemEfficiency())
        assert s.if_idle == pytest.approx(GOLDEN_EXACT["eq11_flat_current"],
                                          abs=1e-12)
        assert s.ifc_idle == pytest.approx(GOLDEN_EXACT["eq4_ifc_at_flat"],
                                           abs=1e-4)

    def test_fig4(self):
        r = fig4_motivational()
        assert r.fuel["fc-dpm"] == pytest.approx(GOLDEN_EXACT["fig4_fc_fuel"],
                                                 abs=1e-4)
        assert r.fuel["asap-dpm"] == pytest.approx(
            GOLDEN_EXACT["fig4_asap_fuel"], abs=1e-4
        )
        assert r.fuel["conv-dpm"] == pytest.approx(
            GOLDEN_EXACT["fig4_conv_fuel_eq4"], abs=1e-4
        )

    def test_stack_voc(self):
        assert FCStack.bcs_20w().open_circuit_voltage == pytest.approx(
            GOLDEN_EXACT["stack_voc"], abs=1e-9
        )


class TestSeededGoldens:
    @pytest.fixture(scope="class")
    def tables(self):
        return table2(seed=2007), table3(seed=2007)

    def test_table2_cells(self, tables):
        t2, _ = tables
        assert t2.normalized["asap-dpm"] == pytest.approx(
            GOLDEN_SEEDED["table2_asap"], abs=0.02
        )
        assert t2.normalized["fc-dpm"] == pytest.approx(
            GOLDEN_SEEDED["table2_fc"], abs=0.02
        )

    def test_table3_cells(self, tables):
        _, t3 = tables
        assert t3.normalized["asap-dpm"] == pytest.approx(
            GOLDEN_SEEDED["table3_asap"], abs=0.02
        )
        assert t3.normalized["fc-dpm"] == pytest.approx(
            GOLDEN_SEEDED["table3_fc"], abs=0.02
        )
