"""The paper's DVD camcorder (Fig. 6) and its Experiment-2 variant.

The camcorder is an MPEG encoder feeding a 16 MB buffer drained by a 4x
DVD writer at 5.28 MB/s.  Encoding runs continuously (STANDBY); when the
buffer fills, the writer wakes (RUN, 3.03 s); between writes the writer
can be put to SLEEP.  The LCD is off throughout the trace.
"""

from __future__ import annotations

from ..config import CamcorderConstants, Experiment2Constants
from .device import DeviceParams, DPMDevice


def camcorder_device_params(
    constants: CamcorderConstants | None = None,
    i_pd: float = 0.40,
    i_wu: float = 0.40,
) -> DeviceParams:
    """Device parameters of the paper's DVD camcorder (Experiment 1).

    Fig. 6: RUN 14.65 W, STANDBY 4.84 W, SLEEP 2.40 W on a 12 V rail;
    SLEEP transitions take 0.5 s at 4.84 W (the paper's block diagram
    labels them 0.40 A / ~4.65 W -- we expose ``i_pd`` / ``i_wu`` so both
    readings are available); STANDBY->RUN 1.5 s, RUN->STANDBY 0.5 s at
    RUN power; ``Tbe = tau_PD + tau_WU = 1 s``.
    """
    c = constants if constants is not None else CamcorderConstants()
    return DeviceParams.from_powers(
        p_run=c.p_run,
        p_sdb=c.p_standby,
        p_slp=c.p_sleep,
        v_rail=12.0,
        t_pd=c.t_pd,
        t_wu=c.t_wu,
        i_pd=i_pd,
        i_wu=i_wu,
        t_sdb_to_run=c.t_standby_to_run,
        t_run_to_sdb=c.t_run_to_standby,
        t_be=c.break_even_time,
    )


def randomized_device_params(
    constants: Experiment2Constants | None = None,
) -> DeviceParams:
    """Device parameters of the randomized Experiment-2 system.

    Same camcorder power states, but heavier SLEEP overheads
    (``tau_PD = tau_WU = 1 s`` at 1.2 A) and ``Tbe = 10 s``.
    """
    e = constants if constants is not None else Experiment2Constants()
    cam = CamcorderConstants()
    return DeviceParams.from_powers(
        p_run=cam.p_run,
        p_sdb=cam.p_standby,
        p_slp=cam.p_sleep,
        v_rail=12.0,
        t_pd=e.t_pd,
        t_wu=e.t_wu,
        i_pd=e.i_pd,
        i_wu=e.i_wu,
        t_sdb_to_run=cam.t_standby_to_run,
        t_run_to_sdb=cam.t_run_to_standby,
        t_be=e.break_even_time,
    )


def dvd_camcorder(constants: CamcorderConstants | None = None) -> DPMDevice:
    """A ready-to-simulate Experiment-1 camcorder device."""
    return DPMDevice(camcorder_device_params(constants))
