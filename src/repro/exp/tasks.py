"""Unit-task execution: the task-kind registry.

Every :class:`~repro.exp.spec.UnitTask` carries a ``kind`` naming an
entry in :data:`TASK_KINDS`; :func:`run_task` dispatches.  Task
functions are module-level (so ``ParallelMap`` can pickle the dispatch
across processes) and import the analysis layers lazily -- the analysis
modules are thin *clients* of this package, so a top-level import here
would be circular.

Kinds
-----
``scenario``
    One (scenario, seed, policy) Monte-Carlo cell; the runner groups
    these and routes whole groups through
    :func:`~repro.sim.vectorized.simulate_batch` (a lone cell runs as a
    one-cell batch, so grouped and ungrouped execution are
    bit-identical).
``scenario-metrics``
    :func:`repro.sim.montecarlo.scenario_metrics` for one seed.
``table2-metrics``
    :func:`repro.sim.montecarlo.table2_metrics` for one seed -- the
    canonical seed-stability cell behind the report's Table-2 study.
``sweep.storage`` / ``sweep.beta`` / ``sweep.recharge`` / ``sweep.predictor``
    One point of the corresponding ablation sweep in
    :mod:`repro.analysis.sweep`, knob value in ``task.params``.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..errors import ConfigurationError
from .spec import UnitTask

#: kind name -> task function ``(UnitTask) -> picklable result``.
TASK_KINDS: dict[str, Callable[[UnitTask], Any]] = {}


def task_kind(name: str):
    """Register a task function under ``name`` (decorator)."""

    def register(fn: Callable[[UnitTask], Any]):
        TASK_KINDS[name] = fn
        return fn

    return register


def task_kind_names() -> list[str]:
    """Registered kinds, sorted."""
    return sorted(TASK_KINDS)


def run_task(task: UnitTask) -> Any:
    """Execute one unit task; returns its (picklable) result value."""
    try:
        fn = TASK_KINDS[task.kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown task kind {task.kind!r}; expected one of {task_kind_names()}"
        ) from None
    return fn(task)


def result_metrics(result) -> dict[str, float]:
    """Reduce a :class:`~repro.sim.slotsim.SimulationResult` to a frame row.

    The canonical per-cell metric dict -- same keys as ``fcdpm run``
    prints, plain floats so it pickles small and compares with ``==``.
    """
    return {
        "fuel": result.fuel,
        "load_charge": result.load_charge,
        "bled": result.bled,
        "deficit": result.deficit,
        "duration": result.duration,
        "n_sleeps": float(result.n_sleeps),
        "wakeup_latency": result.wakeup_latency,
    }


def resolve_scenario(scenario):
    """Turn a spec's scenario field into a live ``Scenario``."""
    from ..scenario import Scenario, get_scenario

    if scenario is None:
        raise ConfigurationError("this task kind requires a scenario")
    if isinstance(scenario, str):
        return get_scenario(scenario)
    if isinstance(scenario, dict):
        return Scenario.from_dict(scenario)
    return scenario


def effective_policy(task: UnitTask) -> str:
    """The policy spec a ``scenario`` cell actually runs.

    ``policy=None`` means "the scenario's own policy kind" -- resolved
    here so grouped batch dispatch and single-cell execution agree.
    """
    if task.policy is not None:
        return task.policy
    return resolve_scenario(task.scenario).policy.kind


@task_kind("scenario")
def _scenario_cell(task: UnitTask) -> dict[str, float]:
    """One (scenario, seed, policy) cell, via a one-cell batch.

    Routing through :func:`simulate_batch` (rather than a hand-built
    ``SlotSimulator``) keeps a straggler cell executed alone bit-equal
    to the same cell inside a grouped batch call.
    """
    from ..sim.vectorized import simulate_batch

    sc = resolve_scenario(task.scenario)
    policy = effective_policy(task)
    out = simulate_batch(sc, [task.seed], [policy], fast=task.fast)
    return result_metrics(out[task.seed][policy])


@task_kind("scenario-metrics")
def _scenario_metrics_cell(task: UnitTask) -> dict[str, float]:
    from ..sim.montecarlo import scenario_metrics

    if not isinstance(task.scenario, str):
        raise ConfigurationError(
            "scenario-metrics tasks need a registered scenario name"
        )
    return scenario_metrics(task.scenario, task.seed, fast=task.fast)


@task_kind("table2-metrics")
def _table2_metrics_cell(task: UnitTask) -> dict[str, float]:
    from ..sim.montecarlo import table2_metrics

    return table2_metrics(task.seed)


def _sweep_base(task: UnitTask):
    from ..analysis.sweep import _sweep_base
    from ..scenario import Scenario

    scenario = task.scenario
    if isinstance(scenario, dict):
        scenario = Scenario.from_dict(scenario)
    return _sweep_base(scenario, task.seed)


def _required_knob(task: UnitTask, knob: str):
    value = task.param(knob)
    if value is None:
        raise ConfigurationError(f"{task.kind} task needs a {knob!r} param")
    return value


@task_kind("sweep.storage")
def _sweep_storage_point(task: UnitTask) -> dict[str, float]:
    from ..analysis.sweep import _storage_capacity_point

    trace, dev = _sweep_base(task)
    cap = float(_required_knob(task, "capacity"))
    return _storage_capacity_point(trace, dev, cap, fast=task.fast)


@task_kind("sweep.beta")
def _sweep_beta_point(task: UnitTask) -> float:
    from ..analysis.sweep import _efficiency_slope_point

    trace, dev = _sweep_base(task)
    return _efficiency_slope_point(
        trace, dev, float(_required_knob(task, "beta")), fast=task.fast
    )


@task_kind("sweep.recharge")
def _sweep_recharge_point(task: UnitTask) -> float:
    from ..analysis.sweep import _recharge_threshold_point

    trace, dev = _sweep_base(task)
    return _recharge_threshold_point(
        trace, dev, float(_required_knob(task, "threshold")), fast=task.fast
    )


@task_kind("sweep.predictor")
def _sweep_predictor_point(task: UnitTask) -> float:
    from ..analysis.sweep import _predictor_point

    trace, dev = _sweep_base(task)
    return _predictor_point(
        trace, dev, str(_required_knob(task, "predictor")), fast=task.fast
    )
