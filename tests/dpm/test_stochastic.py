"""Stochastic DPM tests: mixture fitting and optimal stopping."""

import numpy as np
import pytest

from repro.devices.camcorder import camcorder_device_params, randomized_device_params
from repro.dpm.stochastic import (
    GeometricMixture,
    StochasticDPMPolicy,
    optimal_timeout,
)
from repro.errors import ConfigurationError, RangeError


class TestGeometricMixture:
    def test_survival_at_zero_is_one(self):
        m = GeometricMixture(w=0.5, tau_short=2.0, tau_long=20.0)
        assert m.survival(0.0) == pytest.approx(1.0)

    def test_survival_decreasing(self):
        m = GeometricMixture(w=0.5, tau_short=2.0, tau_long=20.0)
        values = [m.survival(t) for t in (0, 1, 5, 20, 60)]
        assert values == sorted(values, reverse=True)

    def test_posterior_sharpens_with_survival(self):
        m = GeometricMixture(w=0.7, tau_short=2.0, tau_long=30.0)
        assert m.posterior_long(0.0) == pytest.approx(0.3)
        assert m.posterior_long(10.0) > 0.8
        assert m.posterior_long(60.0) > 0.99

    def test_expected_remaining_grows_with_survival(self):
        # The hyper-geometric hazard decreases: having survived longer
        # means expecting *more* remaining idle -- the basis of timeouts.
        m = GeometricMixture(w=0.7, tau_short=2.0, tau_long=30.0)
        values = [m.expected_remaining(t) for t in (0, 2, 5, 15)]
        assert values == sorted(values)
        assert values[-1] <= 30.0 + 1e-9

    def test_mean(self):
        m = GeometricMixture(w=0.25, tau_short=4.0, tau_long=16.0)
        assert m.mean() == pytest.approx(0.25 * 4 + 0.75 * 16)

    def test_degenerate_single_mode(self):
        m = GeometricMixture(w=0.0, tau_short=5.0, tau_long=5.0)
        # Memoryless: expected remaining is constant.
        assert m.expected_remaining(0.0) == pytest.approx(5.0)
        assert m.expected_remaining(17.0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeometricMixture(w=1.5, tau_short=1.0, tau_long=2.0)
        with pytest.raises(ConfigurationError):
            GeometricMixture(w=0.5, tau_short=3.0, tau_long=2.0)
        with pytest.raises(RangeError):
            GeometricMixture(w=0.5, tau_short=1.0, tau_long=2.0).survival(-1.0)


class TestFit:
    def test_recovers_bimodal_data(self):
        rng = np.random.default_rng(0)
        short = rng.exponential(2.0, size=600)
        long_ = rng.exponential(25.0, size=400)
        data = np.concatenate([short, long_])
        m = GeometricMixture.fit(data)
        assert m.tau_short == pytest.approx(2.0, rel=0.5)
        assert m.tau_long == pytest.approx(25.0, rel=0.4)
        assert 0.35 <= m.w <= 0.8

    def test_homogeneous_data_degenerates_gracefully(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(8.0, size=500)
        m = GeometricMixture.fit(data)
        assert m.mean() == pytest.approx(8.0, rel=0.25)

    def test_requires_two_samples(self):
        with pytest.raises(ConfigurationError):
            GeometricMixture.fit([5.0])

    def test_rejects_negative_samples(self):
        with pytest.raises(ConfigurationError):
            GeometricMixture.fit([5.0, -1.0])


class TestOptimalTimeout:
    def test_sleep_immediately_when_mean_clears_breakeven(self):
        m = GeometricMixture(w=0.1, tau_short=5.0, tau_long=30.0)
        assert optimal_timeout(m, break_even=1.0) == 0.0

    def test_positive_timeout_for_bursty_mixture(self):
        # Mostly short idles: wait out the short mode first.
        m = GeometricMixture(w=0.9, tau_short=1.0, tau_long=40.0)
        timeout = optimal_timeout(m, break_even=10.0)
        assert timeout is not None
        assert 0.0 < timeout < 20.0

    def test_never_sleep_when_unreachable(self):
        m = GeometricMixture(w=0.5, tau_short=1.0, tau_long=2.0)
        assert optimal_timeout(m, break_even=10.0) is None

    def test_validation(self):
        m = GeometricMixture(w=0.5, tau_short=1.0, tau_long=2.0)
        with pytest.raises(ConfigurationError):
            optimal_timeout(m, break_even=-1.0)
        with pytest.raises(ConfigurationError):
            optimal_timeout(m, break_even=1.0, resolution=0.0)


class TestStochasticPolicy:
    def test_warmup_uses_break_even_timeout(self):
        policy = StochasticDPMPolicy(camcorder_device_params())
        d = policy.on_idle_start()
        assert d.sleep
        assert d.sleep_after == pytest.approx(1.0)

    def test_refit_after_enough_samples(self):
        policy = StochasticDPMPolicy(
            randomized_device_params(), refit_every=8, warmup=8
        )
        rng = np.random.default_rng(2)
        for _ in range(16):
            policy.on_idle_start()
            policy.on_idle_end(float(rng.exponential(20.0)))
        assert policy.mixture is not None

    def test_learns_to_skip_short_idles(self):
        # Exp-2 device (Tbe = 10 s) fed consistently short idles: after
        # learning, the policy must stop sleeping.
        policy = StochasticDPMPolicy(
            randomized_device_params(), refit_every=4, warmup=4
        )
        rng = np.random.default_rng(3)
        for _ in range(24):
            policy.on_idle_start()
            policy.on_idle_end(float(rng.exponential(2.0)))
        d = policy.on_idle_start()
        assert not d.sleep

    def test_learns_timeout_on_bimodal_idles(self):
        policy = StochasticDPMPolicy(
            randomized_device_params(), refit_every=16, warmup=16
        )
        # Mostly 1.5 s idles with a rare 50 s tail: the prior expected
        # idle sits below Tbe = 10 s (no immediate sleep) but surviving
        # the short mode reveals a long idle -- a genuine timeout.
        rng = np.random.default_rng(4)
        for k in range(64):
            policy.on_idle_start()
            tau = 30.0 if k % 8 == 0 else 1.5
            policy.on_idle_end(float(rng.exponential(tau)))
        assert policy.current_timeout is not None
        assert policy.current_timeout > 0.0

    def test_reset(self):
        policy = StochasticDPMPolicy(camcorder_device_params())
        policy.on_idle_start()
        policy.on_idle_end(12.0)
        policy.reset()
        assert policy.mixture is None
        assert policy.current_timeout == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StochasticDPMPolicy(camcorder_device_params(), refit_every=0)
        with pytest.raises(ConfigurationError):
            StochasticDPMPolicy(camcorder_device_params(), warmup=1)
