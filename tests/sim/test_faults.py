"""Failure-injection tests: graceful degradation under component faults."""

import pytest

from repro.core.manager import PowerManager
from repro.devices.camcorder import camcorder_device_params
from repro.errors import ConfigurationError
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.power.storage import SuperCapacitor
from repro.prediction.exponential import ExponentialAveragePredictor
from repro.sim.faults import DegradedEfficiency, FadedStorage, NoisyPredictor
from repro.sim.slotsim import SlotSimulator, simulate_policies
from repro.workload.mpeg import generate_mpeg_trace


@pytest.fixture(scope="module")
def trace():
    return generate_mpeg_trace(duration_s=600.0, seed=13)


@pytest.fixture(scope="module")
def dev():
    return camcorder_device_params()


class TestDegradedEfficiency:
    def test_scales_efficiency(self):
        base = LinearSystemEfficiency()
        degraded = DegradedEfficiency(base, health=0.8)
        assert degraded.efficiency(0.5) == pytest.approx(
            0.8 * base.efficiency(0.5)
        )

    def test_fuel_rises_smoothly_with_damage(self, trace, dev):
        fuels = []
        for health in (1.0, 0.9, 0.8, 0.7):
            model = DegradedEfficiency(LinearSystemEfficiency(), health)
            mgr = PowerManager.fc_dpm(
                dev, model=model, storage_capacity=6.0, storage_initial=3.0
            )
            fuels.append(SlotSimulator(mgr).run(trace).fuel)
        assert fuels == sorted(fuels)
        # Smooth: each 10% health step costs no more than ~30% fuel.
        for a, b in zip(fuels, fuels[1:]):
            assert b / a < 1.3

    def test_fc_dpm_still_beats_asap_when_degraded(self, trace, dev):
        model = DegradedEfficiency(LinearSystemEfficiency(), health=0.75)
        managers = [
            PowerManager.asap_dpm(dev, model=model, storage_capacity=6.0,
                                  storage_initial=3.0),
            PowerManager.fc_dpm(dev, model=model, storage_capacity=6.0,
                                storage_initial=3.0),
        ]
        results = simulate_policies(trace, managers)
        assert results["fc-dpm"].fuel < results["asap-dpm"].fuel

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DegradedEfficiency(LinearSystemEfficiency(), health=0.0)


class TestFadedStorage:
    def test_identical_before_fade(self):
        inner = SuperCapacitor(capacity=6.0, initial_charge=3.0)
        faded = FadedStorage(inner, fade_time=100.0, fade_factor=0.5)
        faded.step(+0.5, 4.0)
        assert faded.charge == pytest.approx(5.0)
        assert not faded.has_faded

    def test_fade_shrinks_capacity_and_bleeds_excess(self):
        inner = SuperCapacitor(capacity=6.0, initial_charge=5.0)
        faded = FadedStorage(inner, fade_time=10.0, fade_factor=0.5)
        faded.step(0.0, 11.0)
        assert faded.has_faded
        assert faded.capacity == pytest.approx(3.0)
        assert faded.charge == pytest.approx(3.0)
        assert faded.bled_charge == pytest.approx(2.0)

    def test_simulation_survives_midrun_fade(self, trace, dev):
        inner = SuperCapacitor(capacity=6.0, initial_charge=3.0)
        mgr = PowerManager.fc_dpm(
            dev, storage=FadedStorage(inner, fade_time=200.0, fade_factor=0.5)
        )
        result = SlotSimulator(mgr).run(trace)
        assert result.deficit < 0.05 * result.load_charge
        assert mgr.source.storage.has_faded

    def test_fade_costs_fuel(self, trace, dev):
        def run(storage):
            mgr = PowerManager.fc_dpm(dev, storage=storage)
            return SlotSimulator(mgr).run(trace).fuel

        healthy = run(SuperCapacitor(capacity=6.0, initial_charge=3.0))
        faded = run(
            FadedStorage(
                SuperCapacitor(capacity=6.0, initial_charge=3.0),
                fade_time=100.0,
                fade_factor=0.3,
            )
        )
        assert faded >= healthy - 1e-6

    def test_validation(self):
        inner = SuperCapacitor(capacity=6.0)
        with pytest.raises(ConfigurationError):
            FadedStorage(inner, fade_time=-1.0, fade_factor=0.5)
        with pytest.raises(ConfigurationError):
            FadedStorage(inner, fade_time=1.0, fade_factor=0.0)


class TestNoisyPredictor:
    def test_prediction_passes_through(self):
        base = ExponentialAveragePredictor(factor=0.5, initial=7.0)
        noisy = NoisyPredictor(base, sigma=0.3)
        assert noisy.predict() == 7.0

    def test_dropout_blocks_learning(self):
        base = ExponentialAveragePredictor(factor=0.5)
        noisy = NoisyPredictor(base, sigma=0.0, dropout=0.999999, seed=1)
        for _ in range(50):
            noisy.observe(10.0)
        assert base.estimate == pytest.approx(0.0)

    def test_zero_noise_transparent(self):
        base = ExponentialAveragePredictor(factor=0.5)
        noisy = NoisyPredictor(base, sigma=0.0, dropout=0.0)
        noisy.observe(10.0)
        assert base.estimate == pytest.approx(5.0)

    def test_policy_degrades_gracefully_under_noise(self, trace, dev):
        """Sensing corruption must cost fuel, not correctness."""
        from repro.core.fc_dpm import FCDPMController
        from repro.dpm.predictive import PredictiveShutdownPolicy

        def run(sigma: float) -> float:
            base = ExponentialAveragePredictor(factor=0.5)
            predictor = NoisyPredictor(base, sigma=sigma, seed=7)
            mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0,
                                      storage_initial=3.0)
            mgr.policy = PredictiveShutdownPolicy(dev, predictor)
            controller = FCDPMController(
                LinearSystemEfficiency(),
                idle_length_predictor=predictor,
                device=dev,
            )
            controller.observes_idle = False
            mgr.controller = controller
            result = SlotSimulator(mgr, max_deficit_fraction=1.0).run(trace)
            assert result.deficit < 0.05 * result.load_charge
            return result.fuel

        clean = run(0.0)
        noisy = run(0.8)
        assert noisy < clean * 1.25  # bounded degradation

    def test_validation(self):
        base = ExponentialAveragePredictor()
        with pytest.raises(ConfigurationError):
            NoisyPredictor(base, sigma=-0.1)
        with pytest.raises(ConfigurationError):
            NoisyPredictor(base, dropout=1.0)
