"""Power-electronics substrate: converters, storage, pluggable power sources.

The plant seam is :class:`~repro.power.source.PowerSource`; the
reference implementation is the paper's single-stack
:class:`~repro.power.hybrid.HybridPowerSource`, with
:class:`~repro.power.multistack.MultiStackHybrid` and
:class:`~repro.power.battery_only.BatteryOnlySource` proving the seam.
"""

from .converter import (
    ConverterModel,
    IdealConverter,
    PWMConverter,
    PFMConverter,
    PWMPFMConverter,
)
from .storage import ChargeStorage, SuperCapacitor, LiIonBattery, IdealStorage
from .source import PowerSource, SourceStep
from .hybrid import HybridPowerSource, HybridStep
from .multistack import (
    MultiStackHybrid,
    LoadSharingStrategy,
    EqualShare,
    EfficiencyProportional,
)
from .battery_only import BatteryOnlySource

__all__ = [
    "ConverterModel",
    "IdealConverter",
    "PWMConverter",
    "PFMConverter",
    "PWMPFMConverter",
    "ChargeStorage",
    "SuperCapacitor",
    "LiIonBattery",
    "IdealStorage",
    "PowerSource",
    "SourceStep",
    "HybridPowerSource",
    "HybridStep",
    "MultiStackHybrid",
    "LoadSharingStrategy",
    "EqualShare",
    "EfficiencyProportional",
    "BatteryOnlySource",
]
