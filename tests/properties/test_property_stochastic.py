"""Property-based tests for the stochastic-DPM mixture model."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dpm.stochastic import GeometricMixture, optimal_timeout


@st.composite
def mixtures(draw):
    tau_short = draw(st.floats(min_value=0.1, max_value=20.0))
    ratio = draw(st.floats(min_value=1.0, max_value=50.0))
    w = draw(st.floats(min_value=0.0, max_value=1.0))
    return GeometricMixture(w=w, tau_short=tau_short,
                            tau_long=tau_short * ratio)


times = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)


class TestMixtureProperties:
    @given(mixtures(), times, times)
    @settings(max_examples=200, deadline=None)
    def test_survival_monotone_decreasing(self, m, a, b):
        lo, hi = sorted((a, b))
        assert m.survival(hi) <= m.survival(lo) + 1e-12

    @given(mixtures(), times)
    @settings(max_examples=200, deadline=None)
    def test_survival_in_unit_interval(self, m, t):
        assert 0.0 <= m.survival(t) <= 1.0

    @given(mixtures(), times, times)
    @settings(max_examples=200, deadline=None)
    def test_posterior_monotone_in_survival(self, m, a, b):
        """Surviving longer can only raise belief in the long mode."""
        lo, hi = sorted((a, b))
        assert m.posterior_long(hi) >= m.posterior_long(lo) - 1e-9

    @given(mixtures(), times)
    @settings(max_examples=200, deadline=None)
    def test_expected_remaining_bounded_by_modes(self, m, t):
        value = m.expected_remaining(t)
        assert m.tau_short - 1e-9 <= value <= m.tau_long + 1e-9

    @given(mixtures(), times, times)
    @settings(max_examples=200, deadline=None)
    def test_expected_remaining_monotone(self, m, a, b):
        """Decreasing-hazard families never get *less* promising."""
        lo, hi = sorted((a, b))
        assert m.expected_remaining(hi) >= m.expected_remaining(lo) - 1e-9

    @given(mixtures(), st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=200, deadline=None)
    def test_optimal_timeout_consistent_with_threshold(self, m, tbe):
        timeout = optimal_timeout(m, break_even=tbe, resolution=0.25)
        if timeout is None:
            # Never profitable: even the long-mode ceiling falls short.
            assert m.tau_long < tbe or m.expected_remaining(
                4 * m.tau_long
            ) < tbe + 0.5
        else:
            assert m.expected_remaining(timeout) >= tbe
            # And it is the *first* such grid point.
            if timeout > 0:
                assert m.expected_remaining(timeout - 0.25) < tbe

    @given(mixtures())
    @settings(max_examples=200, deadline=None)
    def test_mean_is_expected_remaining_at_zero(self, m):
        assert m.mean() == pytest.approx(m.expected_remaining(0.0), rel=1e-9)


class TestFitProperties:
    @given(
        st.lists(
            st.floats(min_value=0.05, max_value=500.0, allow_nan=False),
            min_size=3,
            max_size=80,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_fit_always_produces_valid_mixture(self, samples):
        m = GeometricMixture.fit(samples)
        assert 0 <= m.w <= 1
        assert 0 < m.tau_short <= m.tau_long

    @given(
        st.lists(
            st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
            min_size=5,
            max_size=80,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_fit_mean_tracks_sample_mean(self, samples):
        m = GeometricMixture.fit(samples)
        sample_mean = sum(samples) / len(samples)
        assume(sample_mean > 0.5)
        assert m.mean() == pytest.approx(sample_mean, rel=0.6)
