"""Stack thermal model tests."""

import pytest

from repro.fuelcell.thermal import (
    THERMONEUTRAL_CELL_VOLTAGE,
    StackThermalModel,
    ThermalParams,
)
from repro.errors import ConfigurationError, RangeError


@pytest.fixture
def model() -> StackThermalModel:
    return StackThermalModel()


class TestHeatGeneration:
    def test_no_heat_at_open_circuit(self, model):
        assert model.heat_power(0.0) == 0.0

    def test_heat_grows_with_current(self, model):
        heats = [model.heat_power(i) for i in (0.2, 0.6, 1.0, 1.4)]
        assert heats == sorted(heats)

    def test_heat_is_enthalpy_minus_electricity(self, model):
        i_fc = 1.0
        v_thermo = THERMONEUTRAL_CELL_VOLTAGE * 20
        electrical = float(model.stack.voltage(i_fc)) * i_fc
        assert model.heat_power(i_fc) == pytest.approx(
            v_thermo * i_fc - electrical
        )

    def test_heat_comparable_to_electrical_power(self, model):
        # A PEM stack at ~50% efficiency wastes roughly as much as it makes.
        i_fc = 1.0
        electrical = float(model.stack.power(i_fc))
        assert 0.5 * electrical < model.heat_power(i_fc) < 2.0 * electrical

    def test_negative_current_rejected(self, model):
        with pytest.raises(RangeError):
            model.heat_power(-0.1)


class TestSteadyState:
    def test_fan_lowers_steady_temperature(self, model):
        hot = model.steady_state_temperature(1.0, fan_speed=0.0)
        cool = model.steady_state_temperature(1.0, fan_speed=1.0)
        assert cool < hot

    def test_full_load_needs_the_fan(self, model):
        # Natural convection alone cannot hold the membrane limit at 1.3 A.
        assert (
            model.steady_state_temperature(1.3, fan_speed=0.0)
            > model.params.t_max
        )
        assert (
            model.steady_state_temperature(1.3, fan_speed=1.0)
            < model.params.t_max
        )

    def test_required_fan_speed_monotone_in_load(self, model):
        speeds = [model.required_fan_speed(i) for i in (0.3, 0.7, 1.1, 1.4)]
        assert speeds == sorted(speeds)

    def test_light_load_needs_no_fan(self, model):
        assert model.required_fan_speed(0.1) == 0.0

    def test_fan_speed_bounds(self, model):
        assert 0.0 <= model.required_fan_speed(1.45) <= 1.0

    def test_bad_fan_speed_rejected(self, model):
        with pytest.raises(RangeError):
            model.steady_state_temperature(1.0, fan_speed=1.5)


class TestDynamics:
    def test_step_approaches_steady_state(self, model):
        target = model.steady_state_temperature(1.0, 0.5)
        for _ in range(200):
            model.step(1.0, 0.5, dt=60.0)
        assert model.temperature == pytest.approx(target, abs=0.5)

    def test_exact_exponential_step(self):
        m = StackThermalModel()
        t_inf = m.steady_state_temperature(1.0, 0.5)
        tau = m.params.thermal_mass / m.conductance(0.5)
        import math

        t0 = m.temperature
        m.step(1.0, 0.5, dt=tau)
        expected = t_inf + (t0 - t_inf) * math.exp(-1.0)
        assert m.temperature == pytest.approx(expected, rel=1e-9)

    def test_over_limit_detection(self):
        m = StackThermalModel()
        for _ in range(300):
            m.step(1.4, 0.0, dt=120.0)  # no fan at heavy load
        assert m.over_limit

    def test_reset(self, model):
        model.step(1.0, 0.0, dt=600.0)
        model.reset()
        assert model.temperature == model.params.t_ambient

    def test_negative_dt_rejected(self, model):
        with pytest.raises(RangeError):
            model.step(1.0, 0.5, dt=-1.0)


class TestParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalParams(thermal_mass=0.0)
        with pytest.raises(ConfigurationError):
            ThermalParams(t_max=200.0)  # below ambient


class TestFanControllerLink:
    def test_proportional_fan_matches_thermal_need_shape(self, model):
        """The cubic electrical fan law and the thermal requirement must
        agree qualitatively: negligible need at light load, steep rise
        toward full load -- the physical basis of Fig. 3(b)."""
        light = model.required_fan_speed(0.15)
        heavy = model.required_fan_speed(1.3)
        assert light == 0.0
        assert heavy > 0.45
