"""PowerManager: the joint device-side + source-side policy bundle.

The paper's algorithms *jointly* control the embedded system's power
state (a :class:`~repro.dpm.policy.DPMPolicy`) and the FC output (a
:class:`~repro.core.baselines.SourceController`) over a hybrid source.
:class:`PowerManager` wires the three together, shares the idle-period
predictor between the DPM policy and FC-DPM (as in the paper, both
consume the same ``T'_i``), and offers one-line constructors for the
three evaluated configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import FCSystemConstants
from ..devices.device import DeviceParams
from ..dpm.policy import DPMPolicy
from ..dpm.predictive import PredictiveShutdownPolicy
from ..fuelcell.efficiency import LinearSystemEfficiency, SystemEfficiencyModel
from ..fuelcell.fuel import FuelTank, GibbsFuelModel
from ..fuelcell.system import FCSystem
from ..power.hybrid import HybridPowerSource
from ..power.source import PowerSource
from ..power.storage import ChargeStorage, SuperCapacitor
from ..prediction.exponential import ExponentialAveragePredictor
from .baselines import ASAPDPMController, ConvDPMController, SourceController
from .fc_dpm import FCDPMController


@dataclass
class PowerManager:
    """Device parameters + DPM policy + FC output controller + source.

    Build directly, or use the :meth:`conv_dpm` / :meth:`asap_dpm` /
    :meth:`fc_dpm` constructors which assemble the paper's three
    configurations over the same device and storage.
    """

    name: str
    device: DeviceParams
    policy: DPMPolicy
    controller: SourceController
    source: PowerSource

    # -- factories ---------------------------------------------------------

    @staticmethod
    def _make_source(
        model: SystemEfficiencyModel,
        storage: ChargeStorage | None,
        storage_capacity: float,
        storage_initial: float,
    ) -> HybridPowerSource:
        if storage is None:
            storage = SuperCapacitor(
                capacity=storage_capacity, initial_charge=storage_initial
            )
        fc = FCSystem(model, tank=FuelTank(model=GibbsFuelModel(zeta=model.zeta)))
        return HybridPowerSource(fc=fc, storage=storage)

    @classmethod
    def conv_dpm(
        cls,
        device: DeviceParams,
        model: SystemEfficiencyModel | None = None,
        storage: ChargeStorage | None = None,
        storage_capacity: float = 6.0,
        storage_initial: float = 0.0,
        rho: float = 0.5,
    ) -> "PowerManager":
        """Conv-DPM: predictive device DPM, FC pinned at ``IF_max``."""
        m = model if model is not None else LinearSystemEfficiency.from_constants(
            FCSystemConstants()
        )
        policy = PredictiveShutdownPolicy(
            device, ExponentialAveragePredictor(factor=rho)
        )
        return cls(
            name="conv-dpm",
            device=device,
            policy=policy,
            controller=ConvDPMController(m),
            source=cls._make_source(m, storage, storage_capacity, storage_initial),
        )

    @classmethod
    def asap_dpm(
        cls,
        device: DeviceParams,
        model: SystemEfficiencyModel | None = None,
        storage: ChargeStorage | None = None,
        storage_capacity: float = 6.0,
        storage_initial: float = 0.0,
        rho: float = 0.5,
        recharge_threshold: float = 0.5,
    ) -> "PowerManager":
        """ASAP-DPM: predictive device DPM, load-following FC output."""
        m = model if model is not None else LinearSystemEfficiency.from_constants(
            FCSystemConstants()
        )
        policy = PredictiveShutdownPolicy(
            device, ExponentialAveragePredictor(factor=rho)
        )
        return cls(
            name="asap-dpm",
            device=device,
            policy=policy,
            controller=ASAPDPMController(m, recharge_threshold=recharge_threshold),
            source=cls._make_source(m, storage, storage_capacity, storage_initial),
        )

    @classmethod
    def fc_dpm(
        cls,
        device: DeviceParams,
        model: SystemEfficiencyModel | None = None,
        storage: ChargeStorage | None = None,
        storage_capacity: float = 6.0,
        storage_initial: float = 0.0,
        rho: float = 0.5,
        sigma: float = 0.5,
        active_current_estimate: float | None = None,
    ) -> "PowerManager":
        """FC-DPM: predictive device DPM + fuel-optimal FC setting.

        The idle predictor instance is shared between the DPM policy and
        the FC controller, exactly as in the paper where both consume
        the same ``T'_i(k)``.
        """
        m = model if model is not None else LinearSystemEfficiency.from_constants(
            FCSystemConstants()
        )
        idle_predictor = ExponentialAveragePredictor(factor=rho)
        policy = PredictiveShutdownPolicy(device, idle_predictor)
        controller = FCDPMController(
            m,
            active_length_predictor=ExponentialAveragePredictor(factor=sigma),
            idle_length_predictor=idle_predictor,
            active_current_estimate=active_current_estimate,
            device=device,
        )
        # The policy already feeds the shared idle predictor.
        controller.observes_idle = False
        return cls(
            name="fc-dpm",
            device=device,
            policy=policy,
            controller=controller,
            source=cls._make_source(m, storage, storage_capacity, storage_initial),
        )

    def telemetry_attrs(self) -> dict:
        """Plain-data description of this configuration.

        Attached to run spans and manifests so a trace is
        self-describing: which policy/controller/plant produced it,
        without reaching back into live objects.
        """
        return {
            "manager": self.name,
            "policy": type(self.policy).__name__,
            "controller": type(self.controller).__name__,
            "source": getattr(self.source, "kind", type(self.source).__name__),
            "storage": type(self.source.storage).__name__,
            "storage_capacity": self.source.storage.capacity,
        }

    def reset(self, storage_charge: float = 0.0) -> None:
        """Reset policy, controller and source for a fresh run."""
        self.policy.reset()
        self.controller.reset()
        self.source.reset(storage_charge)
