"""On-disk result cache for whole experiments.

``fcdpm`` subcommands and the benchmark suite recompute identical
tables and sweeps over and over; a full report is seconds of compute
for bytes of output.  :class:`ResultCache` stores any picklable result
under a key that is a stable hash of

* a namespace (the experiment name),
* the experiment parameters (canonical JSON, so dict ordering and
  int/float spelling cannot change the key), and
* a fingerprint of the installed ``repro`` source code,

so results are transparently invalidated the moment either the
parameters *or the code* change.  Corrupt or unreadable entries are
treated as misses -- the cache can always be deleted wholesale.

The location defaults to ``~/.cache/fcdpm`` and can be redirected with
the ``FCDPM_CACHE_DIR`` environment variable; the CLI exposes
``--no-cache`` to bypass it entirely.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..obs import OBS

_FINGERPRINT: str | None = None

logger = logging.getLogger("repro.runtime.cache")


def code_fingerprint(root: Path | str | None = None) -> str:
    """Stable hash of every ``*.py`` file under ``root``.

    ``root`` defaults to the installed ``repro`` package tree (cached
    per process -- the common case hashes the source exactly once).
    Adding, removing, or editing any module under the root changes the
    fingerprint and therefore every cache key -- the "code version"
    part of the invalidation story.
    """
    global _FINGERPRINT
    if root is None and _FINGERPRINT is not None:
        return _FINGERPRINT
    package_root = (
        Path(__file__).resolve().parent.parent if root is None else Path(root)
    )
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    fingerprint = digest.hexdigest()[:16]
    if root is None:
        _FINGERPRINT = fingerprint
    return fingerprint


def _canonical(params: Any) -> str:
    """Canonical JSON for hashing: sorted keys, no whitespace drift."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=repr)


def cache_key(namespace: str, params: Any, fingerprint: str | None = None) -> str:
    """Hex key for (namespace, params, code version)."""
    fp = code_fingerprint() if fingerprint is None else fingerprint
    payload = f"{namespace}\x00{_canonical(params)}\x00{fp}"
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def default_cache_dir() -> Path:
    """``$FCDPM_CACHE_DIR`` if set, else ``~/.cache/fcdpm``."""
    env = os.environ.get("FCDPM_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "fcdpm"


class ResultCache:
    """Pickle-per-entry directory cache with atomic writes.

    Parameters
    ----------
    root:
        Cache directory (created lazily).  ``None`` uses
        :func:`default_cache_dir`.
    enabled:
        When False every lookup misses and nothing is written -- the
        ``--no-cache`` escape hatch without branching at call sites.
    """

    def __init__(self, root: Path | str | None = None, enabled: bool = True) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- primitive get/put -------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Load a cached value, or ``default`` on any kind of miss."""
        if not self.enabled:
            return default
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            if OBS.enabled:
                OBS.metrics.counter("runtime.cache.misses").inc()
            return default
        self.hits += 1
        if OBS.enabled:
            OBS.metrics.counter("runtime.cache.hits").inc()
        return value

    def put(self, key: str, value: Any) -> None:
        """Store a value atomically (rename over a temp file).

        Best-effort: an unwritable directory or unpicklable value makes
        this a no-op -- the cache must never break the computation.
        """
        if not self.enabled:
            return
        tmp = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except (OSError, pickle.PickleError, AttributeError, TypeError):
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def contains(self, key: str) -> bool:
        """True when an entry exists (without loading it)."""
        return self.enabled and self._path(key).exists()

    # -- invalidation telemetry --------------------------------------------

    def _sidecar_path(self, namespace: str, params: Any) -> Path:
        """Fingerprint sidecar keyed by (namespace, params) *only*.

        The entry key folds the code fingerprint in, so after a source
        edit the old entry simply stops being found.  The sidecar
        remembers which fingerprint last produced a value for these
        parameters, which is what lets a miss be classified as a *code
        invalidation* rather than a first-ever computation.
        """
        payload = f"{namespace}\x00{_canonical(params)}"
        stem = hashlib.sha256(payload.encode()).hexdigest()[:32]
        return self.root / f"{stem}.fp"

    def _note_invalidation(self, namespace: str, params: Any, fp: str) -> None:
        """Detect a fingerprint change; emit the ``cache.invalidated`` event.

        Best-effort file IO: telemetry must never break the computation.
        """
        sidecar = self._sidecar_path(namespace, params)
        try:
            old_fp = sidecar.read_text().strip()
        except OSError:
            old_fp = ""
        if old_fp and old_fp != fp:
            logger.info(
                "cache.invalidated namespace=%s old_fingerprint=%s "
                "new_fingerprint=%s",
                namespace,
                old_fp,
                fp,
            )
            if OBS.enabled:
                OBS.metrics.counter(
                    "runtime.cache.invalidated", namespace=namespace
                ).inc()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            sidecar.write_text(fp + "\n")
        except OSError:
            pass

    def _write_entry_manifest(
        self, key: str, namespace: str, params: Any, fp: str, wall_s: float
    ) -> None:
        """Drop a provenance manifest next to a freshly computed entry."""
        from ..obs import build_manifest

        try:
            manifest = build_manifest(
                namespace,
                scenario=None,
                params=json.loads(_canonical(params)),
                seeds=[],
                workers=0,
                route="cached",
                wall_s=wall_s,
                cpu_s=0.0,
                metrics={},
                fingerprint=fp,
            )
            manifest.write(self.root / f"{key}.manifest.json")
        except (OSError, TypeError, ValueError):
            pass

    # -- the convenience everyone actually uses ----------------------------

    def store(
        self, namespace: str, params: Any, value: Any, wall_s: float = 0.0
    ) -> str:
        """Store a computed value with full provenance; returns its key.

        The write path of :meth:`cached`, usable when the computation
        happened elsewhere (the experiment runner computes whole
        batches, then stores each cell): entry pickle, fingerprint
        sidecar, and ``<key>.manifest.json`` provenance record.  The
        key is returned even when the cache is disabled, so callers can
        link records to where the entry *would* live.
        """
        fp = code_fingerprint()
        key = cache_key(namespace, params, fp)
        if not self.enabled:
            return key
        self._note_invalidation(namespace, params, fp)
        self.put(key, value)
        self._write_entry_manifest(key, namespace, params, fp, wall_s)
        return key

    def cached(self, namespace: str, params: Any, compute: Callable[[], Any]) -> Any:
        """Return the cached result of ``compute()`` for these parameters.

        The key covers the code fingerprint, so a source change
        recomputes; when that happens a structured ``cache.invalidated``
        event is logged (old vs new fingerprint) and counted.  Every
        fresh computation also writes a ``<key>.manifest.json``
        provenance record beside the pickle.
        """
        fp = code_fingerprint()
        key = cache_key(namespace, params, fp)
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            t0 = time.perf_counter()
            value = compute()
            self.store(namespace, params, value, wall_s=time.perf_counter() - t0)
        return value

    # -- hygiene -----------------------------------------------------------

    def _entry_namespace(self, path: Path) -> tuple[str, dict | None]:
        """Namespace (and params) of one entry, via its manifest sidecar.

        Entry keys are opaque hashes; the ``<key>.manifest.json``
        provenance record is what remembers the namespace.  Entries
        without a readable manifest report ``"(unknown)"``.
        """
        manifest = self.root / f"{path.stem}.manifest.json"
        try:
            data = json.loads(manifest.read_text())
            return str(data["name"]), data.get("params")
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return "(unknown)", None

    def stats(self) -> "CacheStats":
        """Entry count, bytes, and a per-namespace breakdown.

        Namespaces come from each entry's manifest sidecar (entries
        predating manifests group under ``"(unknown)"``); sidecar files
        (``.fp`` fingerprints and the manifests themselves) are counted
        separately.
        """
        namespaces: dict[str, NamespaceStats] = {}
        entries = 0
        entry_bytes = 0
        sidecar_files = 0
        sidecar_bytes = 0
        if not self.root.exists():
            return CacheStats(self.root, 0, 0, 0, 0, {})
        for path in sorted(self.root.glob("*.pkl")):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entries += 1
            entry_bytes += size
            namespace, _ = self._entry_namespace(path)
            current = namespaces.get(namespace, NamespaceStats(0, 0))
            namespaces[namespace] = NamespaceStats(
                current.entries + 1, current.bytes + size
            )
        for pattern in ("*.fp", "*.manifest.json"):
            for path in self.root.glob(pattern):
                try:
                    sidecar_bytes += path.stat().st_size
                    sidecar_files += 1
                except OSError:
                    continue
        return CacheStats(
            root=self.root,
            entries=entries,
            bytes=entry_bytes,
            sidecar_files=sidecar_files,
            sidecar_bytes=sidecar_bytes,
            namespaces=dict(sorted(namespaces.items())),
        )

    def _unlink(self, path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def _sweep_orphans(self) -> int:
        """Remove sidecars whose entry pickle is gone; returns count.

        Entry deletion (by :meth:`clear` or by hand) used to leave
        ``<key>.manifest.json`` provenance records behind forever;
        every clear now finishes with this sweep.  Fingerprint sidecars
        are keyed by (namespace, params) rather than per entry, so they
        are only swept by a full :meth:`clear`.
        """
        n = 0
        for manifest in self.root.glob("*.manifest.json"):
            stem = manifest.name[: -len(".manifest.json")]
            if not (self.root / f"{stem}.pkl").exists():
                n += self._unlink(manifest)
        return n

    def clear(self, namespace: str | None = None) -> int:
        """Delete entries (and their sidecars); returns entries removed.

        ``namespace=None`` clears everything, including stray temp
        files and orphaned sidecars.  With a namespace, only entries
        whose manifest names that namespace go -- each with its
        manifest and its (namespace, params) fingerprint sidecar --
        followed by an orphaned-manifest sweep.  Entries without a
        manifest cannot be attributed and are only removed by a full
        clear.
        """
        if not self.root.exists():
            return 0
        n = 0
        if namespace is None:
            for path in self.root.glob("*.pkl"):
                n += self._unlink(path)
            for pattern in ("*.fp", "*.manifest.json", "*.tmp"):
                for path in self.root.glob(pattern):
                    self._unlink(path)
            return n
        for path in self.root.glob("*.pkl"):
            entry_namespace, params = self._entry_namespace(path)
            if entry_namespace != namespace:
                continue
            n += self._unlink(path)
            self._unlink(self.root / f"{path.stem}.manifest.json")
            if params is not None:
                self._unlink(self._sidecar_path(namespace, params))
        self._sweep_orphans()
        return n


@dataclass(frozen=True)
class NamespaceStats:
    """Entry count and pickle bytes of one namespace."""

    entries: int
    bytes: int


@dataclass(frozen=True)
class CacheStats:
    """One :meth:`ResultCache.stats` snapshot."""

    root: Path
    entries: int
    bytes: int
    sidecar_files: int
    sidecar_bytes: int
    namespaces: dict[str, NamespaceStats]

    @property
    def total_bytes(self) -> int:
        """Entries plus sidecars."""
        return self.bytes + self.sidecar_bytes
