"""The complete FC *system*: stack + DC-DC converter + controller.

This is the "Fuel cell system" box of paper Fig. 1.  Its terminal
behaviour, as seen by the rest of the hybrid source, is:

* a regulated output voltage ``VF`` (12 V),
* a commanded output current ``IF`` restricted to the load-following
  range, and
* a fuel consumption rate ``Ifc = (VF * IF) / (zeta * eta_s(IF))``
  (Eq. 3) integrated against a :class:`~repro.fuelcell.fuel.FuelTank`.
"""

from __future__ import annotations

from ..config import FCSystemConstants
from ..errors import RangeError
from .efficiency import LinearSystemEfficiency, SystemEfficiencyModel
from .fuel import FuelTank, GibbsFuelModel


class FCSystem:
    """Controllable fuel-cell power system.

    Parameters
    ----------
    efficiency_model:
        System-efficiency law; defaults to the paper's calibrated linear
        model (``alpha=0.45, beta=0.13``).
    tank:
        Fuel reserve; defaults to a bottomless metering tank.
    allow_zero_output:
        If True, ``IF = 0`` (system off) is accepted even though it lies
        below the load-following minimum.  The paper's policies never
        switch the FC off mid-trace, but sizing studies may.
    """

    def __init__(
        self,
        efficiency_model: SystemEfficiencyModel | None = None,
        tank: FuelTank | None = None,
        allow_zero_output: bool = False,
    ) -> None:
        self.model = (
            efficiency_model
            if efficiency_model is not None
            else LinearSystemEfficiency()
        )
        self.tank = (
            tank
            if tank is not None
            else FuelTank(model=GibbsFuelModel(zeta=self.model.zeta))
        )
        self.allow_zero_output = allow_zero_output
        self._i_f = self.model.if_min

    @classmethod
    def paper_system(
        cls, constants: FCSystemConstants | None = None, tank: FuelTank | None = None
    ) -> "FCSystem":
        """The paper's measured configuration (Section 2.3 constants)."""
        c = constants if constants is not None else FCSystemConstants()
        return cls(LinearSystemEfficiency.from_constants(c), tank=tank)

    # -- output control ---------------------------------------------------------

    @property
    def v_out(self) -> float:
        """Regulated output voltage ``VF`` (V)."""
        return self.model.v_out

    @property
    def output_current(self) -> float:
        """Currently commanded system output current ``IF`` (A)."""
        return self._i_f

    @property
    def load_following_range(self) -> tuple[float, float]:
        """``(IF_min, IF_max)`` in amperes."""
        return self.model.if_min, self.model.if_max

    def set_output(self, i_f: float, *, clamp: bool = True) -> float:
        """Command a new output current, returning the value actually set.

        With ``clamp=True`` out-of-range commands are clipped to the
        load-following range (paper Section 3.3.1); otherwise they raise
        :class:`RangeError`.
        """
        if i_f == 0.0 and self.allow_zero_output:
            self._i_f = 0.0
            return 0.0
        if clamp:
            self._i_f = self.model.clamp(i_f)
        else:
            if not self.model.in_range(i_f):
                raise RangeError(
                    f"IF={i_f:.3f} A outside load-following range "
                    f"[{self.model.if_min}, {self.model.if_max}] A"
                )
            self._i_f = i_f
        return self._i_f

    # -- fuel dynamics -------------------------------------------------------

    def fc_current(self, i_f: float | None = None) -> float:
        """Stack current ``Ifc`` at output ``IF`` (current setting if None)."""
        target = self._i_f if i_f is None else i_f
        if target == 0.0:
            return 0.0
        return self.model.fc_current(target)

    def run(self, dt: float, *, strict_fuel: bool = True) -> float:
        """Hold the present output for ``dt`` seconds; burn and return fuel (A-s)."""
        if dt < 0:
            raise RangeError("dt cannot be negative")
        return self.tank.draw(self.fc_current(), dt, strict=strict_fuel)

    def output_power(self) -> float:
        """Electrical output power ``VF * IF`` (W) at the present setting."""
        return self.v_out * self._i_f

    def efficiency(self) -> float:
        """System efficiency at the present setting."""
        if self._i_f == 0.0:
            return 0.0
        return self.model.efficiency(self._i_f)
