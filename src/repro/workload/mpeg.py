"""Synthetic MPEG encode/write trace generator (Experiment-1 substitute).

The paper drives Experiment 1 with "a real trace based MPEG
encoding/writing task trace obtained from a DVD camcorder" -- data we do
not have.  This module substitutes a frame-level synthetic model whose
*observable statistics* match everything the paper states about the
trace:

* the camcorder encodes continuously into a 16 MB buffer;
* a buffer-full event triggers a fixed 3.03 s write (16 MB / 5.28 MB/s);
* the gap between writes ("idle period" for the DVD writer) varies from
  8 s to 20 s "depending on the characteristics of the MPEG frames";
* the trace is 28 minutes long.

Model: video is a sequence of *scenes* with geometric length and i.i.d.
complexity; within a scene the encoder emits GOPs (IBBP... structure)
whose compressed sizes follow the classic I/P/B size ratios scaled by
scene complexity, an AR(1) drift, and lognormal per-GOP noise.  The
buffer-fill times this produces land in the paper's 8-20 s band with the
irregular, scene-correlated pattern visible in the paper's Fig. 7(a).
Deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CamcorderConstants
from ..errors import ConfigurationError
from .trace import LoadTrace, TaskSlot


@dataclass(frozen=True)
class MpegEncoderModel:
    """Frame-level MPEG-2 bitstream model.

    Attributes
    ----------
    fps:
        Frame rate (frames/s).
    gop_length:
        Frames per GOP (N).
    i_to_p, i_to_b:
        P- and B-frame size as a fraction of an I-frame.
    base_i_frame_kb:
        I-frame size (kB) at unit complexity.
    complexity_low, complexity_high:
        Scene complexity range; complexity scales all frame sizes.
    scene_mean_gops:
        Mean scene length in GOPs (geometric distribution).
    ar_coeff:
        AR(1) coefficient for intra-scene complexity drift.
    noise_sigma:
        Lognormal sigma of per-GOP size noise.
    """

    fps: float = 30.0
    gop_length: int = 15
    i_to_p: float = 0.45
    i_to_b: float = 0.20
    base_i_frame_kb: float = 125.0
    complexity_low: float = 0.55
    complexity_high: float = 1.60
    scene_mean_gops: float = 12.0
    ar_coeff: float = 0.85
    noise_sigma: float = 0.08

    def __post_init__(self) -> None:
        if self.fps <= 0 or self.gop_length < 1:
            raise ConfigurationError("fps and gop_length must be positive")
        if not 0 < self.i_to_b <= self.i_to_p <= 1:
            raise ConfigurationError("need 0 < i_to_b <= i_to_p <= 1")
        if not 0 < self.complexity_low <= self.complexity_high:
            raise ConfigurationError("bad complexity range")
        if not 0 <= self.ar_coeff < 1:
            raise ConfigurationError("AR coefficient must be in [0, 1)")

    @property
    def gop_duration(self) -> float:
        """Wall time covered by one GOP (s)."""
        return self.gop_length / self.fps

    def gop_size_mb(self, complexity: float, noise: float = 1.0) -> float:
        """Compressed size (MB) of one GOP at the given complexity.

        GOP structure: 1 I-frame, and the remaining frames split between
        P and B in the classic M=3 pattern (one P per two Bs).
        """
        if complexity <= 0:
            raise ConfigurationError("complexity must be positive")
        rest = self.gop_length - 1
        n_p = rest // 3 + (1 if rest % 3 else 0)
        n_b = rest - n_p
        frames_i_units = 1.0 + n_p * self.i_to_p + n_b * self.i_to_b
        size_kb = self.base_i_frame_kb * complexity * frames_i_units * noise
        return size_kb / 1024.0

    def mean_rate_mb_s(self, complexity: float) -> float:
        """Mean encoder output rate (MB/s) at the given complexity."""
        return self.gop_size_mb(complexity) / self.gop_duration


def generate_mpeg_trace(
    duration_s: float = 28 * 60.0,
    seed: int = 2007,
    model: MpegEncoderModel | None = None,
    camcorder: CamcorderConstants | None = None,
    name: str = "mpeg-28min",
) -> LoadTrace:
    """Generate the Experiment-1 MPEG encode/write trace.

    Simulates the encoder filling the write buffer GOP by GOP; every
    buffer-full event emits a task slot whose idle period is the
    inter-write gap and whose active period is the fixed DVD write.  The
    resulting idle lengths are clipped into the paper's stated 8-20 s
    band (the clip binds rarely; the complexity range is calibrated so
    the natural spread already sits inside it).

    Parameters
    ----------
    duration_s:
        Target trace length (paper: 28 minutes).
    seed:
        RNG seed; the trace is deterministic given the seed.
    model, camcorder:
        Optional overrides of the bitstream / device constants.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    m = model if model is not None else MpegEncoderModel()
    cam = camcorder if camcorder is not None else CamcorderConstants()
    rng = np.random.default_rng(seed)

    i_active = cam.p_run / 12.0
    t_active = cam.active_length

    slots: list[TaskSlot] = []
    elapsed = 0.0
    buffer_mb = 0.0
    gap = 0.0

    # Scene state.
    scene_gops_left = 0
    scene_complexity = 1.0
    drift = 1.0

    # The minimum possible fill time must stay feasible: generate until
    # the requested duration is covered by whole slots.
    while elapsed < duration_s:
        if scene_gops_left <= 0:
            scene_gops_left = 1 + rng.geometric(1.0 / m.scene_mean_gops)
            scene_complexity = rng.uniform(m.complexity_low, m.complexity_high)
            drift = 1.0
        scene_gops_left -= 1

        drift = m.ar_coeff * drift + (1 - m.ar_coeff) * rng.normal(1.0, 0.10)
        noise = float(np.exp(rng.normal(0.0, m.noise_sigma)))
        gop_mb = m.gop_size_mb(scene_complexity * max(drift, 0.2), noise)

        buffer_mb += gop_mb
        gap += m.gop_duration

        if buffer_mb >= cam.buffer_mb:
            t_idle = float(np.clip(gap, cam.idle_min, cam.idle_max))
            slots.append(TaskSlot(t_idle, t_active, i_active))
            elapsed += t_idle + t_active
            buffer_mb = 0.0
            gap = 0.0

    return LoadTrace(slots, name=name)
