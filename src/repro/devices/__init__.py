"""Embedded-system substrate: power-state machines and device models."""

from .states import PowerState, Transition, PowerStateMachine, break_even_time
from .device import DPMDevice, DeviceParams
from .camcorder import (
    dvd_camcorder,
    camcorder_device_params,
    randomized_device_params,
)
from .multidevice import (
    MultiDeviceTask,
    ScheduleEvaluation,
    cluster_order,
    evaluate_schedule,
    compare_orderings,
)

__all__ = [
    "PowerState",
    "Transition",
    "PowerStateMachine",
    "break_even_time",
    "DPMDevice",
    "DeviceParams",
    "dvd_camcorder",
    "camcorder_device_params",
    "randomized_device_params",
    "MultiDeviceTask",
    "ScheduleEvaluation",
    "cluster_order",
    "evaluate_schedule",
    "compare_orderings",
]
