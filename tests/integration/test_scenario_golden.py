"""Scenario-built runs must be bit-identical to the table reproductions.

The acceptance bar for the declarative layer: ``fcdpm run --scenario
exp1-fc-dpm`` (and friends) must produce *exactly* the floats the
hand-assembled ``table2()``/``table3()`` pipelines produce -- ``==``,
not ``approx`` -- so the registry can never drift from the paper's
configurations unnoticed.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import table2, table3
from repro.scenario import get_scenario
from repro.sim.slotsim import SlotSimulator

POLICIES = ("conv-dpm", "asap-dpm", "fc-dpm")


@pytest.fixture(scope="module")
def table2_results():
    return table2(seed=2007).results


@pytest.fixture(scope="module")
def table3_results():
    return table3(seed=2007).results


class TestScenarioBitIdentity:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_exp1_scenarios_match_table2_exactly(self, policy, table2_results):
        sc = get_scenario(f"exp1-{policy}")
        run = SlotSimulator(sc.build_manager()).run(sc.build_trace(2007))
        ref = table2_results[policy]
        assert run.fuel == ref.fuel
        assert run.load_charge == ref.load_charge
        assert run.bled == ref.bled
        assert run.deficit == ref.deficit
        assert run.n_sleeps == ref.n_sleeps

    @pytest.mark.parametrize("policy", POLICIES)
    def test_exp2_scenarios_match_table3_exactly(self, policy, table3_results):
        sc = get_scenario(f"exp2-{policy}")
        run = SlotSimulator(sc.build_manager()).run(sc.build_trace(2007))
        ref = table3_results[policy]
        assert run.fuel == ref.fuel
        assert run.load_charge == ref.load_charge
        assert run.bled == ref.bled
        assert run.deficit == ref.deficit
        assert run.n_sleeps == ref.n_sleeps


class TestVariantScenariosRun:
    def test_multistack_serves_exp1_with_less_fuel_than_single(
        self, table2_results
    ):
        sc = get_scenario("exp1-fc-dpm-multistack")
        run = SlotSimulator(sc.build_manager()).run(sc.build_trace(2007))
        # Two half-load stacks sit higher on the falling efficiency law,
        # so the ganged plant strictly beats the single stack on fuel.
        assert 0 < run.fuel < table2_results["fc-dpm"].fuel
        assert run.deficit == 0.0

    def test_battery_scenario_serves_exp1_without_deficit(self):
        sc = get_scenario("exp1-battery")
        run = SlotSimulator(sc.build_manager()).run(sc.build_trace(2007))
        assert run.fuel == 0.0
        assert run.deficit == 0.0
        assert run.load_charge > 0
