"""Micro-benchmarks of the hot paths (throughput numbers for the README).

These are conventional performance benches: the closed-form slot solver
must stay in the microsecond range (it runs once per task slot online),
and a full 28-minute trace simulation must remain interactive.

The runtime benches at the bottom measure the PR-1 speed levers: the
memoized slot solver versus a cold solve, and a 20-seed Monte-Carlo
sweep dispatched serially versus across every available core.  Both
write their measurements to ``benchmarks/out/``.
"""

import os
import time

from repro.core.manager import PowerManager
from repro.core.optimizer import solve_slot
from repro.core.setting import SlotProblem
from repro.devices.camcorder import camcorder_device_params
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.runtime.memo import (
    clear_solver_cache,
    solve_slot_memo,
    solver_cache_stats,
)
from repro.runtime.parallel import ParallelMap, resolve_workers
from repro.sim.montecarlo import run_seeds, table2_metrics
from repro.sim.slotsim import SlotSimulator
from repro.workload.mpeg import generate_mpeg_trace

MODEL = LinearSystemEfficiency()
PROBLEM = SlotProblem(
    t_idle=12.0, t_active=3.0, i_idle=0.2, i_active=1.22,
    c_ini=3.0, c_end=3.0, c_max=6.0, sleeping=True,
    t_wu=0.5, t_pd=0.5, i_wu=0.4, i_pd=0.4,
)


def test_bench_solve_slot_closed_form(benchmark):
    """One online FC-DPM decision (must be trivially cheap)."""
    solution = benchmark(solve_slot, PROBLEM, MODEL)
    assert solution.fuel > 0


def test_bench_fuel_map_evaluation(benchmark):
    """A single Eq. 4 evaluation."""
    value = benchmark(MODEL.fc_current, 0.5333)
    assert abs(value - 0.448) < 1e-3


def test_bench_trace_generation(benchmark):
    """28-minute MPEG trace synthesis."""
    trace = benchmark(generate_mpeg_trace)
    assert len(trace) > 50


def test_bench_full_simulation_fc_dpm(benchmark):
    """End-to-end FC-DPM simulation of the 28-minute trace."""
    trace = generate_mpeg_trace()
    dev = camcorder_device_params()

    def run():
        mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        return SlotSimulator(mgr).run(trace)

    result = benchmark(run)
    assert result.fuel > 0


# -- runtime subsystem benches (PR 1) ---------------------------------------


def _best_of(fn, repeats: int = 5, number: int = 2000) -> float:
    """Best mean-per-call over several timing repeats (s)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best


def test_bench_solve_slot_cached_vs_uncached(benchmark, emit):
    """Memoized re-solve of an identical slot problem: >= 5x faster."""
    clear_solver_cache()
    t_uncached = _best_of(lambda: solve_slot(PROBLEM, MODEL))
    solve_slot_memo(PROBLEM, MODEL)  # warm the single entry
    t_cached = _best_of(lambda: solve_slot_memo(PROBLEM, MODEL))
    benchmark(solve_slot_memo, PROBLEM, MODEL)
    ratio = t_uncached / t_cached
    stats = solver_cache_stats()
    emit(
        "microbench_solver_cache",
        "solve_slot memoization (identical SlotProblem re-solve)\n"
        f"uncached: {1e6 * t_uncached:.2f} us/call\n"
        f"cached:   {1e6 * t_cached:.2f} us/call\n"
        f"speedup:  {ratio:.1f}x (hit rate {stats.hit_rate:.3f})",
    )
    assert ratio >= 5.0, f"cached re-solve only {ratio:.1f}x faster"
    clear_solver_cache()


def test_bench_run_seeds_parallel(benchmark, emit):
    """20-seed table2 sweep: workers=1 vs workers=all-cores.

    Parallel summaries must be bit-identical to serial; the >= 2x
    wall-clock assertion only applies where the hardware can deliver it
    (>= 4 usable cores -- a 1-core CI box still exercises dispatch and
    equivalence, just not the speedup).
    """
    seeds = range(20)
    workers = resolve_workers(0)

    t0 = time.perf_counter()
    serial = run_seeds(table2_metrics, seeds, workers=1)
    t_serial = time.perf_counter() - t0

    pm = ParallelMap(workers=workers)
    t0 = time.perf_counter()
    parallel_results = pm.map(table2_metrics, list(seeds))
    t_parallel = time.perf_counter() - t0
    parallel = run_seeds(table2_metrics, seeds, workers=workers)
    benchmark.pedantic(
        run_seeds, args=(table2_metrics, seeds), kwargs={"workers": workers},
        rounds=1, iterations=1,
    )

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    emit(
        "microbench_parallel_run_seeds",
        "run_seeds: 20-seed table2 Monte-Carlo sweep\n"
        f"serial (workers=1):    {t_serial:.3f} s\n"
        f"parallel (workers={workers}): {t_parallel:.3f} s\n"
        f"speedup: {speedup:.2f}x | {pm.stats.summary()}",
    )

    as_bits = lambda out: {
        k: (s.n, s.mean, s.stdev, s.minimum, s.maximum) for k, s in out.items()
    }
    assert as_bits(parallel) == as_bits(serial)
    assert len(parallel_results) == 20
    if workers >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x on {workers} cores, measured {speedup:.2f}x"
        )


def test_bench_downsizing_curve_parallel(emit):
    """Sizing curve fan-out: equivalence plus timing on this host."""
    trace = generate_mpeg_trace(seed=3)
    dev = camcorder_device_params()
    from repro.fuelcell.sizing import downsizing_curve

    caps = (0.0, 1.0, 2.0, 4.0, 6.0, 12.0, 24.0)
    t0 = time.perf_counter()
    serial = downsizing_curve(trace, dev, capacities=caps)
    t_serial = time.perf_counter() - t0
    workers = resolve_workers(0)
    t0 = time.perf_counter()
    parallel = downsizing_curve(trace, dev, capacities=caps, workers=workers)
    t_parallel = time.perf_counter() - t0
    emit(
        "microbench_parallel_downsizing",
        "downsizing_curve over 7 capacities\n"
        f"serial:   {t_serial:.3f} s\n"
        f"parallel (workers={workers}): {t_parallel:.3f} s "
        f"({os.cpu_count()} cpus on host)",
    )
    assert parallel == serial
