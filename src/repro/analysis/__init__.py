"""Experiment regeneration: the paper's tables, figures and sweeps."""

from .tables import table2, table3, TableResult
from .figures import (
    fig2_stack_iv_curve,
    fig3_efficiency_curves,
    fig4_motivational,
    fig7_current_profiles,
    MotivationalResult,
)
from .report import format_table, format_series, ascii_plot
from .battery_contrast import ShapingCost, shaping_contrast
from .slew import SlewResult, apply_slew_limit, slew_rate_sweep
from .sensitivity import sensitivity_analysis, tornado_ranking
from .export import export_all
from .energy_density import compare_packs, camcorder_comparison, DensityComparison
from .experiments import full_report, mpc_comparison
from .sweep import (
    storage_capacity_sweep,
    predictor_sweep,
    efficiency_slope_sweep,
    recharge_threshold_sweep,
)

__all__ = [
    "table2",
    "table3",
    "TableResult",
    "fig2_stack_iv_curve",
    "fig3_efficiency_curves",
    "fig4_motivational",
    "fig7_current_profiles",
    "MotivationalResult",
    "format_table",
    "format_series",
    "ascii_plot",
    "ShapingCost",
    "SlewResult",
    "apply_slew_limit",
    "slew_rate_sweep",
    "sensitivity_analysis",
    "tornado_ranking",
    "export_all",
    "compare_packs",
    "camcorder_comparison",
    "DensityComparison",
    "shaping_contrast",
    "full_report",
    "mpc_comparison",
    "storage_capacity_sweep",
    "predictor_sweep",
    "efficiency_slope_sweep",
    "recharge_threshold_sweep",
]
