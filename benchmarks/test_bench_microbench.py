"""Micro-benchmarks of the hot paths (throughput numbers for the README).

These are conventional performance benches: the closed-form slot solver
must stay in the microsecond range (it runs once per task slot online),
and a full 28-minute trace simulation must remain interactive.

The runtime benches at the bottom measure the PR-1 speed levers: the
memoized slot solver versus a cold solve, and a 20-seed Monte-Carlo
sweep dispatched serially versus across every available core.  Both
write their measurements to ``benchmarks/out/``.
"""

import os
import time

from repro.core.manager import PowerManager
from repro.core.optimizer import solve_slot
from repro.core.setting import SlotProblem
from repro.devices.camcorder import camcorder_device_params
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.runtime.memo import (
    clear_solver_cache,
    solve_slot_memo,
    solver_cache_stats,
)
from repro.runtime.parallel import ParallelMap, resolve_workers
from repro.sim.montecarlo import run_seeds, table2_metrics
from repro.sim.slotsim import SlotSimulator
from repro.workload.mpeg import generate_mpeg_trace

MODEL = LinearSystemEfficiency()
PROBLEM = SlotProblem(
    t_idle=12.0, t_active=3.0, i_idle=0.2, i_active=1.22,
    c_ini=3.0, c_end=3.0, c_max=6.0, sleeping=True,
    t_wu=0.5, t_pd=0.5, i_wu=0.4, i_pd=0.4,
)


def test_bench_solve_slot_closed_form(benchmark):
    """One online FC-DPM decision (must be trivially cheap)."""
    solution = benchmark(solve_slot, PROBLEM, MODEL)
    assert solution.fuel > 0


def test_bench_fuel_map_evaluation(benchmark):
    """A single Eq. 4 evaluation."""
    value = benchmark(MODEL.fc_current, 0.5333)
    assert abs(value - 0.448) < 1e-3


def test_bench_trace_generation(benchmark):
    """28-minute MPEG trace synthesis."""
    trace = benchmark(generate_mpeg_trace)
    assert len(trace) > 50


def test_bench_full_simulation_fc_dpm(benchmark):
    """End-to-end FC-DPM simulation of the 28-minute trace."""
    trace = generate_mpeg_trace()
    dev = camcorder_device_params()

    def run():
        mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        return SlotSimulator(mgr).run(trace)

    result = benchmark(run)
    assert result.fuel > 0


# -- runtime subsystem benches (PR 1) ---------------------------------------


def _best_of(fn, repeats: int = 5, number: int = 2000) -> float:
    """Best mean-per-call over several timing repeats (s)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best


def test_bench_solve_slot_cached_vs_uncached(benchmark, emit):
    """Memoized re-solve of an identical slot problem: >= 5x faster."""
    clear_solver_cache()
    t_uncached = _best_of(lambda: solve_slot(PROBLEM, MODEL))
    solve_slot_memo(PROBLEM, MODEL)  # warm the single entry
    t_cached = _best_of(lambda: solve_slot_memo(PROBLEM, MODEL))
    benchmark(solve_slot_memo, PROBLEM, MODEL)
    ratio = t_uncached / t_cached
    stats = solver_cache_stats()
    emit(
        "microbench_solver_cache",
        "solve_slot memoization (identical SlotProblem re-solve)\n"
        f"uncached: {1e6 * t_uncached:.2f} us/call\n"
        f"cached:   {1e6 * t_cached:.2f} us/call\n"
        f"speedup:  {ratio:.1f}x (hit rate {stats.hit_rate:.3f})",
    )
    assert ratio >= 5.0, f"cached re-solve only {ratio:.1f}x faster"
    clear_solver_cache()


def test_bench_run_seeds_parallel(benchmark, emit):
    """20-seed table2 sweep: workers=1 vs workers=all-cores.

    Parallel summaries must be bit-identical to serial; the >= 2x
    wall-clock assertion only applies where the hardware can deliver it
    (>= 4 usable cores -- a 1-core CI box still exercises dispatch and
    equivalence, just not the speedup).
    """
    seeds = range(20)
    workers = resolve_workers(0)

    t0 = time.perf_counter()
    serial = run_seeds(table2_metrics, seeds, workers=1)
    t_serial = time.perf_counter() - t0

    pm = ParallelMap(workers=workers)
    t0 = time.perf_counter()
    parallel_results = pm.map(table2_metrics, list(seeds))
    t_parallel = time.perf_counter() - t0
    parallel = run_seeds(table2_metrics, seeds, workers=workers)
    benchmark.pedantic(
        run_seeds, args=(table2_metrics, seeds), kwargs={"workers": workers},
        rounds=1, iterations=1,
    )

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    emit(
        "microbench_parallel_run_seeds",
        "run_seeds: 20-seed table2 Monte-Carlo sweep\n"
        f"serial (workers=1):    {t_serial:.3f} s\n"
        f"parallel (workers={workers}): {t_parallel:.3f} s\n"
        f"speedup: {speedup:.2f}x | {pm.stats.summary()}",
    )

    as_bits = lambda out: {
        k: (s.n, s.mean, s.stdev, s.minimum, s.maximum) for k, s in out.items()
    }
    assert as_bits(parallel) == as_bits(serial)
    assert len(parallel_results) == 20
    if workers >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x on {workers} cores, measured {speedup:.2f}x"
        )


def test_bench_downsizing_curve_parallel(emit):
    """Sizing curve fan-out: equivalence plus timing on this host."""
    trace = generate_mpeg_trace(seed=3)
    dev = camcorder_device_params()
    from repro.fuelcell.sizing import downsizing_curve

    caps = (0.0, 1.0, 2.0, 4.0, 6.0, 12.0, 24.0)
    t0 = time.perf_counter()
    serial = downsizing_curve(trace, dev, capacities=caps)
    t_serial = time.perf_counter() - t0
    workers = resolve_workers(0)
    t0 = time.perf_counter()
    parallel = downsizing_curve(trace, dev, capacities=caps, workers=workers)
    t_parallel = time.perf_counter() - t0
    emit(
        "microbench_parallel_downsizing",
        "downsizing_curve over 7 capacities\n"
        f"serial:   {t_serial:.3f} s\n"
        f"parallel (workers={workers}): {t_parallel:.3f} s "
        f"({os.cpu_count()} cpus on host)",
    )
    assert parallel == serial


# -- vectorized kernel benches (this PR) -------------------------------------


def _best_wall(fn, repeats: int = 3) -> float:
    """Best single-call wall-clock over ``repeats`` warm runs (s)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_vectorized_table2(emit, kernel_record):
    """Single-trace array kernel vs scalar simulator on the Exp-1 trace.

    Conv-DPM and ASAP-DPM hold static controllers, so the kernel is
    pure array code (>= 4x).  FC-DPM is scan-compiled since kernel
    round 2 -- its Eq. 14/15 predictors precompute, but the per-slot
    storage-coupled solves stay sequential, so its floor is lower
    (>= 2x).  Every timed pair is asserted bit-identical first.
    """
    from repro.sim.vectorized import simulate_fast

    trace = generate_mpeg_trace(seed=2007)
    dev = camcorder_device_params()
    builders = {
        "conv-dpm": (PowerManager.conv_dpm, 4.0),
        "asap-dpm": (PowerManager.asap_dpm, 4.0),
        "fc-dpm": (PowerManager.fc_dpm, 2.0),
    }
    lines = ["vectorized simulate_fast vs SlotSimulator (Exp-1 trace)"]
    data: dict[str, dict[str, float]] = {}
    for name, (build, floor) in builders.items():
        def scalar():
            mgr = build(dev, storage_capacity=6.0, storage_initial=3.0)
            return SlotSimulator(mgr).run(trace)

        def fast():
            mgr = build(dev, storage_capacity=6.0, storage_initial=3.0)
            return simulate_fast(mgr, trace)

        assert fast() == scalar()
        t_scalar = _best_of(scalar, repeats=5, number=5)
        t_fast = _best_of(fast, repeats=5, number=25)
        ratio = t_scalar / t_fast
        lines.append(
            f"{name}: scalar {1e3 * t_scalar:.3f} ms | "
            f"fast {1e3 * t_fast:.3f} ms | speedup {ratio:.1f}x"
        )
        data[name] = {
            "scalar_ms": 1e3 * t_scalar,
            "fast_ms": 1e3 * t_fast,
            "speedup": ratio,
        }
        assert ratio >= floor, f"{name} only {ratio:.1f}x faster"

    emit("microbench_vectorized_table2", "\n".join(lines), data=data)
    kernel_record("single_trace", data)


def test_bench_vectorized_batch(emit, kernel_record):
    """100-seed x 3-policy Monte-Carlo batch, warm best-of.

    Three timings over the same prebuilt traces: the scalar loop
    (``fast=False``), the serial kernel (``fast=True, workers=1``), and
    the full batch path (``fast=True, workers=`` every core, which
    ships per-seed plans through shared memory).  Gates: the serial
    kernel must hold >= 12x everywhere; the full path must reach >= 50x
    where the hardware can deliver it (>= 4 usable cores -- the same
    self-gating convention as the run_seeds bench above; a 1-core box
    still asserts exact equality of all paths).  Warm best-of is the
    methodology: the first call pays one-time costs (solver memo,
    import side effects) that a cold single-shot misattributes to
    whichever path runs second.
    """
    from repro.scenario import get_scenario
    from repro.sim.vectorized import simulate_batch

    sc = get_scenario("exp1-conv-dpm")
    seeds = list(range(100))
    policies = ["conv-dpm", "asap-dpm", "static:0.8"]
    traces = {s: sc.build_trace(s) for s in seeds}
    workers = resolve_workers(0)

    scalar = simulate_batch(sc, seeds, policies, fast=False, traces=traces)
    fast = simulate_batch(
        sc, seeds, policies, fast=True, traces=traces, stacked=False
    )
    assert fast == scalar
    if workers > 1:
        parallel = simulate_batch(
            sc, seeds, policies, fast=True, traces=traces, workers=0
        )
        assert parallel == scalar

    t_scalar = _best_wall(
        lambda: simulate_batch(sc, seeds, policies, fast=False, traces=traces),
        repeats=2,
    )
    t_fast = _best_wall(
        lambda: simulate_batch(
            sc, seeds, policies, fast=True, traces=traces, stacked=False
        ),
        repeats=5,
    )
    ratio = t_scalar / t_fast
    lines = [
        "simulate_batch: 100 seeds x 3 policies (exp1-conv-dpm), warm best-of",
        f"scalar loop (fast=False):  {1e3 * t_scalar:.1f} ms",
        f"serial kernel (workers=1): {1e3 * t_fast:.1f} ms "
        f"| speedup {ratio:.1f}x",
    ]
    data = {
        "n_seeds": len(seeds),
        "policies": policies,
        "scalar_ms": 1e3 * t_scalar,
        "fast_ms": 1e3 * t_fast,
        "speedup": ratio,
        "workers": workers,
    }
    if workers > 1:
        t_batch = _best_wall(
            lambda: simulate_batch(
                sc, seeds, policies, fast=True, traces=traces, workers=0
            ),
            repeats=5,
        )
        batch_ratio = t_scalar / t_batch
        lines.append(
            f"batch path (workers={workers}): {1e3 * t_batch:.1f} ms "
            f"| speedup {batch_ratio:.1f}x"
        )
        data["batch_ms"] = 1e3 * t_batch
        data["batch_speedup"] = batch_ratio
    emit("microbench_vectorized_batch", "\n".join(lines), data=data)
    kernel_record("batch", data)

    assert ratio >= 12.0, f"serial kernel only {ratio:.1f}x faster"
    if workers >= 4:
        assert data["batch_speedup"] >= 50.0, (
            f"expected >= 50x on {workers} cores, "
            f"measured {data['batch_speedup']:.1f}x"
        )


def test_bench_vectorized_batch_fc(emit, kernel_record):
    """100-seed FC-DPM batch: the scan-compiled adaptive controller.

    FC-DPM cannot reach the static-controller ratios -- each slot still
    poses a live storage-coupled ``SlotProblem`` -- so it gets its own
    gate (>= 2.5x, warm best-of) under the same exact-equality
    contract.
    """
    from repro.scenario import get_scenario
    from repro.sim.vectorized import simulate_batch

    sc = get_scenario("exp1-conv-dpm")
    seeds = list(range(100))
    policies = ["fc-dpm"]
    traces = {s: sc.build_trace(s) for s in seeds}

    scalar = simulate_batch(sc, seeds, policies, fast=False, traces=traces)
    fast = simulate_batch(
        sc, seeds, policies, fast=True, traces=traces, stacked=False
    )
    assert fast == scalar

    t_scalar = _best_wall(
        lambda: simulate_batch(sc, seeds, policies, fast=False, traces=traces),
        repeats=2,
    )
    t_fast = _best_wall(
        lambda: simulate_batch(
            sc, seeds, policies, fast=True, traces=traces, stacked=False
        ),
        repeats=3,
    )
    ratio = t_scalar / t_fast
    data = {
        "n_seeds": len(seeds),
        "scalar_ms": 1e3 * t_scalar,
        "fast_ms": 1e3 * t_fast,
        "speedup": ratio,
    }
    emit(
        "microbench_vectorized_batch_fc",
        "simulate_batch: 100 seeds x fc-dpm (scan-compiled), warm best-of\n"
        f"scalar loop:   {1e3 * t_scalar:.1f} ms\n"
        f"serial kernel: {1e3 * t_fast:.1f} ms\n"
        f"speedup: {ratio:.1f}x",
        data=data,
    )
    kernel_record("batch_fc", data)
    assert ratio >= 2.5, f"fc-dpm batch only {ratio:.1f}x faster"


def test_bench_vectorized_batch_stacked(emit, kernel_record):
    """1000-seed fleet sweep: the stacked 2D kernel vs the per-row loop.

    Kernel round 3's claim is that packing every seed's plan into one
    padded (seeds x segments) stack and sweeping all rows at once beats
    iterating the (already vectorized) 1D kernel per seed.  Both sides
    run the identical end-to-end sweep -- trace synthesis included,
    since batched synthesis is part of the stacked path -- over 1000
    seeds x 3 policies on exp2-conv-dpm, warm best-of, under the usual
    exact-equality contract.  Gate: >= 3x; the marginal per-policy cost
    is dominated by SlotResult assembly, a floor both routes share, so
    single-policy sweeps ratio higher than multi-policy ones.
    """
    from repro.scenario import get_scenario
    from repro.sim.vectorized import simulate_batch

    sc = get_scenario("exp2-conv-dpm")
    seeds = list(range(1000))
    policies = ["conv-dpm", "asap-dpm", "static:0.8"]

    stacked = simulate_batch(sc, seeds, policies, stacked=True)
    loop = simulate_batch(sc, seeds, policies, stacked=False)
    assert stacked == loop

    # Interleave the two sides round-by-round (with a gc sweep before
    # each timing) so background noise from earlier benches in the
    # session lands on both equally, then take per-side bests.
    import gc

    t_loop = float("inf")
    t_stacked = float("inf")
    for _ in range(3):
        gc.collect()
        t0 = time.perf_counter()
        simulate_batch(sc, seeds, policies, stacked=False)
        t_loop = min(t_loop, time.perf_counter() - t0)
        gc.collect()
        t0 = time.perf_counter()
        simulate_batch(sc, seeds, policies, stacked=True)
        t_stacked = min(t_stacked, time.perf_counter() - t0)
    ratio = t_loop / t_stacked
    data = {
        "n_seeds": len(seeds),
        "policies": policies,
        "loop_ms": 1e3 * t_loop,
        "stacked_ms": 1e3 * t_stacked,
        "speedup": ratio,
    }
    emit(
        "microbench_vectorized_batch_stacked",
        "simulate_batch: 1000 seeds x 3 policies (exp2-conv-dpm), warm best-of\n"
        f"per-row loop:   {1e3 * t_loop:.1f} ms\n"
        f"stacked kernel: {1e3 * t_stacked:.1f} ms\n"
        f"speedup: {ratio:.1f}x",
        data=data,
    )
    kernel_record("batch_stacked", data)
    assert ratio >= 3.0, f"stacked kernel only {ratio:.1f}x faster"


def test_bench_fc_stacked(emit, kernel_record):
    """1000-seed FC-DPM sweep: lockstep stacked solves vs the per-row loop.

    Kernel round 4's claim: FC-DPM's storage-coupled slot solves, which
    forced the stacked route to fall back to one ``_run_fc`` pass per
    row, batch across rows when the iteration is transposed -- all rows
    advance in lockstep, one ``solve_slot_array`` call per slot column.
    Both sides run the identical end-to-end sweep over 1000 seeds on
    exp2-conv-dpm, warm best-of with interleaved gc'd rounds, under the
    exact-equality contract.  Gate: >= 2x over the per-row loop (the
    loop side is itself the scan-compiled kernel, not the scalar
    simulator, so the bar is a genuine same-generation comparison).
    """
    import gc

    from repro.scenario import get_scenario
    from repro.sim.vectorized import simulate_batch

    sc = get_scenario("exp2-conv-dpm")
    seeds = list(range(1000))
    policies = ["fc-dpm"]

    stacked = simulate_batch(sc, seeds, policies, stacked=True)
    loop = simulate_batch(sc, seeds, policies, stacked=False)
    assert stacked == loop

    t_loop = float("inf")
    t_stacked = float("inf")
    for _ in range(3):
        gc.collect()
        t0 = time.perf_counter()
        simulate_batch(sc, seeds, policies, stacked=False)
        t_loop = min(t_loop, time.perf_counter() - t0)
        gc.collect()
        t0 = time.perf_counter()
        simulate_batch(sc, seeds, policies, stacked=True)
        t_stacked = min(t_stacked, time.perf_counter() - t0)
    ratio = t_loop / t_stacked
    data = {
        "n_seeds": len(seeds),
        "policies": policies,
        "loop_ms": 1e3 * t_loop,
        "stacked_ms": 1e3 * t_stacked,
        "speedup": ratio,
    }
    emit(
        "microbench_fc_stacked",
        "simulate_batch: 1000 seeds x fc-dpm (lockstep stacked), warm best-of\n"
        f"per-row loop:    {1e3 * t_loop:.1f} ms\n"
        f"stacked lockstep: {1e3 * t_stacked:.1f} ms\n"
        f"speedup: {ratio:.1f}x",
        data=data,
    )
    kernel_record("batch_fc_stacked", data)
    assert ratio >= 2.0, f"fc-dpm stacked only {ratio:.1f}x faster"


def test_bench_clamped_cumsum_clamp_heavy(emit, kernel_record):
    """Storage recurrence where nearly every segment clamps.

    20k uniform +/-4 A-s deltas against a 6 A-s bucket violate a bound
    on most steps -- the regime where per-event array rescans
    degenerate and ``clamped_cumsum`` switches to its scratch-buffer +
    sequential tail.  The result must match a pure-Python reference bit
    for bit and still stream >= 2M segments/s.
    """
    import numpy as np

    from repro.sim.vectorized import clamped_cumsum

    rng = np.random.default_rng(0)
    deltas = rng.uniform(-4.0, 4.0, 20_000)
    initial, capacity = 3.0, 6.0

    charges, bled, deficit = clamped_cumsum(deltas, initial, capacity)
    cur, ref_bled, ref_deficit = initial, 0.0, 0.0
    reference = [cur]
    for delta in deltas.tolist():
        new = cur + delta
        if new > capacity:
            ref_bled += new - capacity
            cur = capacity
        elif new < 0.0:
            ref_deficit += -new
            cur = 0.0
        else:
            cur = new
        reference.append(cur)
    assert charges.tolist() == reference
    assert bled == ref_bled and deficit == ref_deficit

    t = _best_of(lambda: clamped_cumsum(deltas, initial, capacity),
                 repeats=3, number=5)
    rate = deltas.shape[0] / t
    data = {
        "n_segments": int(deltas.shape[0]),
        "wall_ms": 1e3 * t,
        "segments_per_second": rate,
    }
    emit(
        "microbench_clamped_cumsum",
        "clamped_cumsum: 20k-segment clamp-heavy recurrence\n"
        f"wall: {1e3 * t:.2f} ms ({rate / 1e6:.1f}M segments/s)",
        data=data,
    )
    kernel_record("clamped_cumsum", data)
    assert rate >= 2e6, f"only {rate / 1e6:.1f}M segments/s"


# -- observability overhead gate (this PR) -----------------------------------


def test_bench_obs_disabled_overhead(emit):
    """Disabled telemetry must cost < 2% of the vectorized batch bench.

    Wall-clock A/A comparisons of the same code path are noise-bound at
    the single-percent level, so the gate projects instead: measure the
    per-call cost of the two disabled primitives (the ``OBS.enabled``
    guard that fronts every hot-path hook, and the null-object span the
    cold paths use), multiply by a *generous overcount* of how many the
    batch executes, and require the projection to stay under 2% of the
    measured per-run batch time.  The batch speedup gates above
    (serial >= 12x, hardware-conditional >= 50x) backstop this against
    gross regressions.
    """
    from repro.obs import OBS
    from repro.scenario import get_scenario
    from repro.sim.vectorized import simulate_batch

    assert not OBS.enabled, "benches must run with telemetry off"

    n = 200_000
    hit = False
    t0 = time.perf_counter()
    for _ in range(n):
        if OBS.enabled:
            hit = True
    t_guard = (time.perf_counter() - t0) / n
    assert not hit

    m = 20_000
    t0 = time.perf_counter()
    for _ in range(m):
        with OBS.span("bench.noop"):
            pass
    t_span = (time.perf_counter() - t0) / m

    sc = get_scenario("exp1-conv-dpm")
    seeds = list(range(20))
    policies = ["conv-dpm", "asap-dpm", "static:0.8"]
    traces = {s: sc.build_trace(s) for s in seeds}
    total_slots = sum(len(traces[s]) for s in seeds)

    def run():
        return simulate_batch(sc, seeds, policies, fast=True, traces=traces)

    run()  # warm the solver memo / manager caches outside the timing
    t_batch = _best_of(run, repeats=3, number=1)

    # Disabled-state executions per batch, overcounted ~5x.  Since the
    # predictor scan (``decisions_array``) replaced the per-slot
    # predict/observe replay, the fast path fires no per-slot guards
    # for these policies -- only ~1 guard per seed in the scan entry
    # plus a handful of routing guards and one span per (seed, policy).
    # A 1x-per-slot term stays in as margin for configurations that
    # fall back to the sequential replay.
    guards = total_slots + 30 * len(seeds) * len(policies)
    spans = 2 * (2 + len(seeds) * len(policies))
    projected = guards * t_guard + spans * t_span
    overhead = projected / t_batch

    emit(
        "microbench_obs_disabled_overhead",
        "telemetry disabled-path overhead vs vectorized batch\n"
        f"guard:     {1e9 * t_guard:.1f} ns/check\n"
        f"null span: {1e9 * t_span:.1f} ns/span\n"
        f"batch:     {1e3 * t_batch:.1f} ms per run "
        f"({len(seeds)} seeds x {len(policies)} policies)\n"
        f"projected overhead ({guards} guards + {spans} spans, "
        f"overcounted): {100 * overhead:.3f}%",
        data={
            "guard_ns": 1e9 * t_guard,
            "null_span_ns": 1e9 * t_span,
            "batch_ms": 1e3 * t_batch,
            "projected_overhead_fraction": overhead,
        },
    )
    assert overhead < 0.02, (
        f"projected disabled-telemetry overhead {100 * overhead:.2f}% "
        "exceeds the 2% budget"
    )


def test_bench_obs_live_disabled_overhead(emit):
    """Disabled *live* telemetry must cost < 2% of the batch bench.

    The live layer adds three hot-path hooks (``sim.batch_rows_completed``
    per seed row, the in-flight chunk gauge, and per-chunk completion
    counters) -- all behind the same ``OBS.enabled`` guard -- plus the
    runner's ``progress is not None`` attribute test per task commit.
    With telemetry off, no flusher thread may exist and the projected
    guard cost must stay inside the 2% budget (same projection method
    as :func:`test_bench_obs_disabled_overhead`).
    """
    import threading

    from repro.obs import OBS
    from repro.scenario import get_scenario
    from repro.sim.vectorized import simulate_batch

    assert not OBS.enabled, "benches must run with telemetry off"

    n = 200_000
    hit = False
    t0 = time.perf_counter()
    for _ in range(n):
        if OBS.enabled:
            hit = True
    t_guard = (time.perf_counter() - t0) / n
    assert not hit

    sc = get_scenario("exp1-conv-dpm")
    seeds = list(range(20))
    policies = ["conv-dpm", "asap-dpm", "static:0.8"]
    traces = {s: sc.build_trace(s) for s in seeds}

    def run():
        return simulate_batch(sc, seeds, policies, fast=True, traces=traces)

    run()
    t_batch = _best_of(run, repeats=3, number=1)

    # Off-path executions the live layer adds per batch, overcounted:
    # one rows-completed guard per seed row on each path (x2 margin for
    # the loop + stacked variants), the inflight gauge + per-chunk
    # counter guards (bounded by chunk count, overcounted at one per
    # seed x policy), and one progress attribute test per task commit
    # (same order as a guard; counted as guards here).
    guards = 3 * len(seeds) * len(policies) + 2 * len(seeds) + 20
    projected = guards * t_guard
    overhead = projected / t_batch

    assert not any(
        t.name.startswith("fcdpm-live") for t in threading.enumerate()
    ), "a LiveFlusher thread is alive in a telemetry-off bench"

    emit(
        "microbench_obs_live_disabled_overhead",
        "live-telemetry disabled-path overhead vs vectorized batch\n"
        f"guard: {1e9 * t_guard:.1f} ns/check\n"
        f"batch: {1e3 * t_batch:.1f} ms per run\n"
        f"projected overhead ({guards} guards, overcounted): "
        f"{100 * overhead:.4f}%",
        data={
            "guard_ns": 1e9 * t_guard,
            "batch_ms": 1e3 * t_batch,
            "projected_overhead_fraction": overhead,
        },
    )
    assert overhead < 0.02, (
        f"projected disabled live-telemetry overhead {100 * overhead:.2f}% "
        "exceeds the 2% budget"
    )
