"""Hwang-Wu exponential-average predictor tests (paper Eq. 14/15)."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.exponential import ExponentialAveragePredictor


class TestFilter:
    def test_paper_recurrence(self):
        # T'(k) = rho*T'(k-1) + (1-rho)*T(k-1) with rho = 0.5.
        p = ExponentialAveragePredictor(factor=0.5, initial=0.0)
        p.observe(10.0)
        assert p.predict() == pytest.approx(5.0)
        p.observe(20.0)
        assert p.predict() == pytest.approx(12.5)

    def test_factor_zero_is_last_value(self):
        p = ExponentialAveragePredictor(factor=0.0)
        p.observe(10.0)
        assert p.predict() == 10.0
        p.observe(3.0)
        assert p.predict() == 3.0

    def test_converges_to_constant_input(self):
        p = ExponentialAveragePredictor(factor=0.5, initial=0.0)
        for _ in range(50):
            p.observe(8.0)
        assert p.predict() == pytest.approx(8.0, rel=1e-6)

    def test_initial_estimate(self):
        assert ExponentialAveragePredictor(initial=12.0).predict() == 12.0

    def test_estimate_property(self):
        p = ExponentialAveragePredictor(factor=0.5)
        p.observe(10.0)
        assert p.estimate == pytest.approx(5.0)

    def test_reset_restores_initial(self):
        p = ExponentialAveragePredictor(factor=0.5, initial=2.0)
        p.observe(10.0)
        p.reset()
        assert p.predict() == 2.0

    def test_smoothing_reduces_variance(self):
        # Alternating inputs: the smoothed estimate stays near the mean,
        # last-value prediction ping-pongs.
        p = ExponentialAveragePredictor(factor=0.8, initial=10.0)
        for k in range(100):
            p.observe(5.0 if k % 2 else 15.0)
        assert p.predict() == pytest.approx(10.0, abs=2.5)

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            ExponentialAveragePredictor(factor=1.0)
        with pytest.raises(ConfigurationError):
            ExponentialAveragePredictor(factor=-0.1)

    def test_rejects_negative_initial(self):
        with pytest.raises(ConfigurationError):
            ExponentialAveragePredictor(initial=-5.0)
