"""Purge-loss fuel model tests."""

import pytest

from repro.errors import ConfigurationError, RangeError
from repro.fuelcell.purge import (
    PurgedFuelModel,
    PurgeModel,
    calibrated_purge_model,
    ideal_zeta,
)


class TestIdealZeta:
    def test_20_cell_floor(self):
        # 20 * 237.1 kJ / (2 * 96485) ~ 24.57 W/A.
        assert ideal_zeta(20) == pytest.approx(24.57, abs=0.05)

    def test_scales_with_cells(self):
        assert ideal_zeta(40) == pytest.approx(2 * ideal_zeta(20))

    def test_rejects_zero_cells(self):
        with pytest.raises(ConfigurationError):
            ideal_zeta(0)


class TestPurgeModel:
    def test_utilization_below_one(self):
        p = PurgeModel(purge_interval_charge=60.0, purge_loss_charge=20.0,
                       crossover_fraction=0.02)
        assert 0 < p.utilization < 1
        assert p.utilization == pytest.approx((60 / 80) * 0.98)

    def test_no_loss_means_full_utilization(self):
        p = PurgeModel(purge_loss_charge=0.0, crossover_fraction=0.0)
        assert p.utilization == 1.0

    def test_purge_count(self):
        p = PurgeModel(purge_interval_charge=60.0)
        assert p.purges_for(0.0) == 0
        assert p.purges_for(59.0) == 0
        assert p.purges_for(180.0) == 3

    def test_purge_count_rejects_negative(self):
        with pytest.raises(RangeError):
            PurgeModel().purges_for(-1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PurgeModel(purge_interval_charge=0.0)
        with pytest.raises(ConfigurationError):
            PurgeModel(crossover_fraction=1.0)


class TestCalibration:
    def test_reproduces_measured_zeta(self):
        p = calibrated_purge_model(zeta_measured=37.5, n_cells=20)
        assert p.effective_zeta(20) == pytest.approx(37.5, rel=1e-9)

    def test_implied_utilization_plausible(self):
        # 24.57 / 37.5 ~ 66 % utilization -- typical dead-ended behaviour.
        p = calibrated_purge_model()
        assert p.utilization == pytest.approx(0.655, abs=0.01)

    def test_rejects_sub_thermodynamic_zeta(self):
        with pytest.raises(ConfigurationError):
            calibrated_purge_model(zeta_measured=20.0)

    def test_rejects_crossover_only_explanation(self):
        # Measured zeta so close to the floor that the assumed crossover
        # already over-explains it: no purge loss can be backed out.
        with pytest.raises(ConfigurationError):
            calibrated_purge_model(zeta_measured=24.58, crossover_fraction=0.002)


class TestPurgedFuelModel:
    def test_drop_in_zeta(self):
        m = PurgedFuelModel()
        assert m.zeta == pytest.approx(37.5)

    def test_vented_fraction(self):
        m = PurgedFuelModel()
        total = m.moles_h2(1000.0)
        vented = m.vented_moles_h2(1000.0)
        assert vented == pytest.approx(total * (1 - m.purge.utilization))
        assert 0 < vented < total

    def test_compatible_with_fuel_tank(self):
        from repro.fuelcell.fuel import FuelTank

        tank = FuelTank(capacity=100.0, model=PurgedFuelModel())
        tank.draw(1.0, 50.0)
        assert tank.consumed_moles_h2() > 0
