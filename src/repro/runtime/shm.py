"""Shared-memory transport for groups of numpy arrays.

``simulate_batch`` compiles one :class:`~repro.sim.vectorized.TraceArrays`
plan per seed; with process workers each plan used to be pickled into
every chunk submission.  This module moves the array payload into one
``multiprocessing.shared_memory`` segment per batch: the coordinator
packs all groups into a single block, workers receive only a small
:class:`GroupHandle` (segment name + per-array offset/dtype/shape
table) and attach zero-copy, read-only views.

Since kernel round 3 the batch coordinator ships a *single* group named
``"stacked"`` -- every seed's plan columns concatenated row-local plus
``seeds``/``seg_offsets``/``slot_counts`` bookkeeping -- instead of one
group per seed; workers attach once and slice their row's views
(:func:`~repro.sim.vectorized._stacked_plan_row`).  The transport
itself is group-agnostic and unchanged.

Degradation is transparent: platforms or sandboxes without shared
memory (import failure, ``/dev/shm`` permission errors) fall back to
carrying the arrays inline in the handle, which pickles exactly like
the pre-shm protocol.  Values are bit-identical either way -- the
segment holds the arrays' raw bytes.

Lifecycle: the creating process owns the segment and must call
:meth:`SharedArrayStore.dispose` (close + unlink) when the batch is
done -- ``simulate_batch`` does so in a ``try/finally`` -- so no stale
``/dev/shm/repro-plans-*`` entries outlive a run.  Workers cache one
attachment per segment and close it at interpreter exit.
"""

from __future__ import annotations

import atexit
import secrets
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms
    _shared_memory = None

#: Name prefix of every segment this module creates; the leak-check
#: tests glob ``/dev/shm`` for it.
SHM_PREFIX = "repro-plans-"

#: Byte alignment of each array within the segment (numpy is happiest
#: with 16-byte-aligned float buffers).
_ALIGN = 16


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside a shared segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class GroupHandle:
    """Pickles small: how a worker finds one named group of arrays.

    Either ``segment``+``specs`` (shared-memory transport) or
    ``inline`` (pickling fallback) is set, never both.
    """

    segment: str | None
    specs: tuple[ArraySpec, ...] | None
    inline: dict[str, np.ndarray] | None


#: Per-process cache of attached segments: one map per segment name.
_ATTACHED: dict[str, "_shared_memory.SharedMemory"] = {}


def _close_attachments() -> None:  # pragma: no cover - exit hook
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except (OSError, BufferError):
            pass
    _ATTACHED.clear()


atexit.register(_close_attachments)


def _attach_segment(name: str) -> "_shared_memory.SharedMemory":
    # Note on the resource tracker: attaching registers the name again
    # (Python < 3.13 has no ``track=False``), which is harmless here --
    # ``ParallelMap`` forks its workers, so they share the coordinator's
    # tracker daemon and the re-registration is an idempotent set-add
    # balanced by the single unregister ``dispose``'s unlink sends.
    # (The textbook post-attach ``resource_tracker.unregister`` would be
    # actively wrong under fork: it strips the coordinator's own
    # registration and the final unlink then KeyErrors in the tracker.)
    shm = _ATTACHED.get(name)
    if shm is None:
        shm = _shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
    return shm


def attach_group(handle: GroupHandle) -> dict[str, np.ndarray]:
    """The named arrays a handle points at, as read-only ndarrays.

    Shared-memory handles resolve to zero-copy views of the segment
    (attached once per process and cached); inline handles return their
    arrays directly.  Either way the bytes are exactly what the
    coordinator packed.
    """
    if handle.inline is not None:
        return dict(handle.inline)
    shm = _attach_segment(handle.segment)
    arrays: dict[str, np.ndarray] = {}
    for spec in handle.specs:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        arrays[spec.name] = view
    return arrays


class SharedArrayStore:
    """One shared segment holding many named groups of arrays.

    Build with :meth:`create`, hand :attr:`handles` to workers, and
    :meth:`dispose` in a ``finally`` when every consumer is done
    submitting work (attached workers keep their mappings alive until
    they close; ``unlink`` only removes the name).
    """

    def __init__(
        self,
        shm: "_shared_memory.SharedMemory | None",
        handles: dict,
    ) -> None:
        self._shm = shm
        self.handles = handles

    @classmethod
    def create(cls, groups: dict) -> "SharedArrayStore":
        """Pack ``{key: {array_name: ndarray}}`` into one shared segment.

        Arrays are copied byte for byte (C-contiguous) at aligned
        offsets.  On any shared-memory failure -- missing module, no
        ``/dev/shm``, permissions -- every group falls back to an
        inline handle and no segment is created.
        """
        if not groups or _shared_memory is None:
            return cls(None, {k: _inline_handle(g) for k, g in groups.items()})
        layout: dict = {}
        cursor = 0
        for key, arrays in groups.items():
            specs = []
            for name, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                cursor = -(-cursor // _ALIGN) * _ALIGN
                specs.append((name, arr, cursor))
                cursor += arr.nbytes
            layout[key] = specs
        try:
            shm = _shared_memory.SharedMemory(
                create=True,
                size=max(cursor, 1),
                name=f"{SHM_PREFIX}{secrets.token_hex(8)}",
            )
        except (OSError, ValueError):
            return cls(None, {k: _inline_handle(g) for k, g in groups.items()})
        handles = {}
        for key, specs in layout.items():
            spec_rows = []
            for name, arr, offset in specs:
                dest = np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
                )
                dest[...] = arr
                spec_rows.append(
                    ArraySpec(name, arr.dtype.str, arr.shape, offset)
                )
            handles[key] = GroupHandle(shm.name, tuple(spec_rows), None)
        return cls(shm, handles)

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent; no-op for inline)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        # A serial-fallback map attaches in this same process; drop that
        # cached mapping too so long sessions don't pin dead segments.
        cached = _ATTACHED.pop(shm.name, None)
        if cached is not None:
            try:
                cached.close()
            except BufferError:  # pragma: no cover - live views remain
                _ATTACHED[shm.name] = cached
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _inline_handle(arrays: dict[str, np.ndarray]) -> GroupHandle:
    return GroupHandle(None, None, dict(arrays))
