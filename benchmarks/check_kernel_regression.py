"""Fail CI when a vectorized-kernel speedup regresses against baseline.

Compares the speedup ratios in ``benchmarks/out/BENCH_kernel.json``
(written by ``make bench-smoke``) against the committed
``benchmarks/BENCH_kernel_baseline.json`` and exits non-zero if any
ratio fell below ``0.8 x baseline``.

Only *ratios* are compared: wall times and throughput numbers are
machine-dependent, but a speedup is the same code racing itself on the
same host, so a >20% drop means the kernel (or its eligibility
routing) regressed, not the hardware.  Baseline entries the current run
did not measure -- e.g. the multi-core batch path on a small runner --
are reported and skipped, never failed.

Usage::

    python benchmarks/check_kernel_regression.py [current.json] [baseline.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Keys whose values are host-independent speedup ratios.
RATIO_KEYS = {"speedup", "batch_speedup"}

#: A measured ratio may drop to this fraction of baseline before failing.
TOLERANCE = 0.8


def ratios(tree, prefix: str = "") -> dict[str, float]:
    """Flatten every ratio entry of a nested report to ``path: value``."""
    out: dict[str, float] = {}
    if isinstance(tree, dict):
        for key, value in tree.items():
            if key in RATIO_KEYS and isinstance(value, (int, float)):
                out[f"{prefix}{key}"] = float(value)
            else:
                out.update(ratios(value, f"{prefix}{key}."))
    return out


def main(argv: list[str]) -> int:
    here = pathlib.Path(__file__).parent
    current_path = (
        pathlib.Path(argv[1]) if len(argv) > 1
        else here / "out" / "BENCH_kernel.json"
    )
    baseline_path = (
        pathlib.Path(argv[2]) if len(argv) > 2
        else here / "BENCH_kernel_baseline.json"
    )
    current = ratios(json.loads(current_path.read_text()))
    baseline = ratios(json.loads(baseline_path.read_text()))

    failures: list[str] = []
    print(f"kernel speedup regression check "
          f"(current >= {TOLERANCE} x baseline):")
    for key, base in sorted(baseline.items()):
        got = current.get(key)
        if got is None:
            print(f"  {key:40s} baseline {base:7.1f}x  (not measured; skipped)")
            continue
        floor = TOLERANCE * base
        status = "ok" if got >= floor else "REGRESSED"
        print(f"  {key:40s} baseline {base:7.1f}x  current {got:7.1f}x  "
              f"floor {floor:5.1f}x  {status}")
        if got < floor:
            failures.append(key)
    if failures:
        print(f"FAIL: speedup below floor for: {', '.join(failures)}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
