"""DVD-camcorder device model tests (paper Fig. 6)."""

import pytest

from repro.devices.camcorder import (
    camcorder_device_params,
    dvd_camcorder,
    randomized_device_params,
)


class TestExperiment1Params:
    def test_paper_currents(self):
        p = camcorder_device_params()
        assert p.i_run == pytest.approx(14.65 / 12)
        assert p.i_sdb == pytest.approx(4.84 / 12)
        assert p.i_slp == pytest.approx(0.2)

    def test_transition_overheads(self):
        p = camcorder_device_params()
        assert p.t_pd == p.t_wu == 0.5
        assert p.i_pd == p.i_wu == pytest.approx(0.40)
        assert p.t_sdb_to_run == 1.5
        assert p.t_run_to_sdb == 0.5

    def test_break_even_is_1s(self):
        assert camcorder_device_params().break_even == pytest.approx(1.0)

    def test_device_factory(self):
        dev = dvd_camcorder()
        assert dev.params.i_run == pytest.approx(14.65 / 12)


class TestExperiment2Params:
    def test_heavier_overheads(self):
        p = randomized_device_params()
        assert p.t_pd == p.t_wu == 1.0
        assert p.i_pd == p.i_wu == pytest.approx(1.2)

    def test_break_even_is_10s(self):
        assert randomized_device_params().break_even == pytest.approx(10.0)

    def test_same_state_currents_as_exp1(self):
        p1 = camcorder_device_params()
        p2 = randomized_device_params()
        assert p2.i_sdb == p1.i_sdb
        assert p2.i_slp == p1.i_slp
