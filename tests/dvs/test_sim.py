"""DVS simulator tests (the refs [10]/[11] comparison)."""

import pytest

from repro.core.multilevel import default_levels
from repro.dvs.cpu import CPUModel
from repro.dvs.policies import (
    EnergyMinimalDVS,
    FuelAwareDVS,
    JointLevelDVS,
    NoDVSPolicy,
)
from repro.dvs.sim import DVSSimulator
from repro.dvs.tasks import constant_frames, mpeg_frames
from repro.fuelcell.efficiency import LinearSystemEfficiency


@pytest.fixture(scope="module")
def cpu() -> CPUModel:
    return CPUModel.xscale_like()


@pytest.fixture(scope="module")
def model() -> LinearSystemEfficiency:
    return LinearSystemEfficiency()


@pytest.fixture(scope="module")
def frames():
    return mpeg_frames(n_frames=100, seed=7)


class TestSimulation:
    def test_duration_matches_deadlines(self, cpu, model, frames):
        sim = DVSSimulator(NoDVSPolicy(cpu), model)
        result = sim.run(frames)
        assert result.duration == pytest.approx(frames.duration)
        assert result.n_frames == len(frames)

    def test_dvs_beats_no_dvs_on_fuel(self, cpu, model, frames):
        no_dvs = DVSSimulator(NoDVSPolicy(cpu), model).run(frames)
        dvs = DVSSimulator(EnergyMinimalDVS(cpu), model).run(frames)
        assert dvs.fuel < no_dvs.fuel
        assert dvs.device_charge < no_dvs.device_charge
        assert dvs.mean_frequency < no_dvs.mean_frequency

    def test_fuel_aware_never_worse_than_energy_min(self, cpu, model, frames):
        em = DVSSimulator(EnergyMinimalDVS(cpu), model).run(frames)
        fa = DVSSimulator(FuelAwareDVS(cpu, model), model).run(frames)
        assert fa.fuel <= em.fuel + 1e-6

    def test_joint_level_close_to_continuous(self, cpu, model, frames):
        fa = DVSSimulator(FuelAwareDVS(cpu, model), model).run(frames)
        joint = DVSSimulator(
            JointLevelDVS(cpu, model, default_levels(model, 8)), model
        ).run(frames)
        # Account any storage drift as deferred fuel before comparing.
        drift = 3.0 - joint.final_storage
        assert joint.fuel + max(drift, 0) * model.fc_current_derivative(
            model.if_max
        ) >= fa.fuel - 0.15 * fa.fuel

    def test_level_histogram_sums_to_frames(self, cpu, model, frames):
        result = DVSSimulator(EnergyMinimalDVS(cpu), model).run(frames)
        assert sum(result.level_histogram.values()) == len(frames)

    def test_constant_frames_constant_level(self, cpu, model):
        frames = constant_frames(20, utilization=0.5)
        result = DVSSimulator(EnergyMinimalDVS(cpu), model).run(frames)
        assert len(result.level_histogram) == 1

    def test_fuel_rate_bounded_by_range(self, cpu, model, frames):
        result = DVSSimulator(EnergyMinimalDVS(cpu), model).run(frames)
        # Ifc at IF_max is ~1.306 A: the average can never exceed it.
        assert result.average_fuel_rate <= 1.31

    def test_storage_accounting(self, cpu, model, frames):
        result = DVSSimulator(FuelAwareDVS(cpu, model), model).run(frames)
        assert 0.0 <= result.final_storage <= 6.0
        assert result.deficit == 0.0
