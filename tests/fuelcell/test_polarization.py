"""Polarization-curve physics tests (paper Fig. 2 anchors)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, RangeError
from repro.fuelcell.polarization import (
    BCS_20W_CELL,
    PolarizationCurve,
    PolarizationParams,
)


@pytest.fixture
def stack_curve() -> PolarizationCurve:
    return PolarizationCurve(BCS_20W_CELL, n_cells=20)


class TestParams:
    def test_rejects_nonpositive_e0(self):
        with pytest.raises(ConfigurationError):
            PolarizationParams(0.0, 0.02, 0.01, 0.05, 1e-5, 5, 1.9)

    def test_rejects_negative_losses(self):
        with pytest.raises(ConfigurationError):
            PolarizationParams(0.9, -0.02, 0.01, 0.05, 1e-5, 5, 1.9)

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigurationError):
            PolarizationParams(0.9, 0.02, 0.01, 0.05, 1e-5, 5, 0.0)


class TestVoltage:
    def test_open_circuit_is_18_2(self, stack_curve):
        # Paper: Vo = 18.2 V for the 20-cell stack.
        assert stack_curve.stack_voltage(0.0) == pytest.approx(18.2)

    def test_voltage_monotonically_decreasing(self, stack_curve):
        i = np.linspace(0, 1.7, 100)
        v = stack_curve.stack_voltage(i)
        assert np.all(np.diff(v) < 0)

    def test_negative_current_rejected(self, stack_curve):
        with pytest.raises(RangeError):
            stack_curve.cell_voltage(-0.1)

    def test_limit_current_rejected(self, stack_curve):
        with pytest.raises(RangeError):
            stack_curve.cell_voltage(BCS_20W_CELL.i_limit)

    def test_vector_and_scalar_agree(self, stack_curve):
        grid = np.array([0.2, 0.7, 1.1])
        vec = stack_curve.stack_voltage(grid)
        for x, v in zip(grid, vec):
            assert stack_curve.stack_voltage(float(x)) == pytest.approx(v)

    def test_voltage_never_negative(self):
        # A very lossy cell clips at zero instead of going negative.
        lossy = PolarizationParams(0.5, 0.2, 0.001, 1.0, 0.01, 6.0, 2.0)
        curve = PolarizationCurve(lossy, n_cells=1)
        assert curve.cell_voltage(1.5) == 0.0


class TestPower:
    def test_max_power_near_20w(self, stack_curve):
        # BCS 20 W stack: maximum power calibrated to ~20 W.
        i_mpp, p_mpp = stack_curve.max_power_point()
        assert p_mpp == pytest.approx(20.0, abs=1.0)
        assert 1.2 < i_mpp < 1.7

    def test_power_unimodal(self, stack_curve):
        i = np.linspace(1e-3, 1.85, 400)
        p = stack_curve.stack_power(i)
        k = int(np.argmax(p))
        assert np.all(np.diff(p[: k + 1]) > 0)
        assert np.all(np.diff(p[k:]) < 0)

    def test_power_zero_at_zero_current(self, stack_curve):
        assert stack_curve.stack_power(0.0) == 0.0


class TestInverse:
    def test_current_for_power_roundtrip(self, stack_curve):
        for p in (2.0, 8.0, 15.0):
            i = stack_curve.current_for_power(p)
            assert stack_curve.stack_power(i) == pytest.approx(p, rel=1e-6)

    def test_current_for_power_picks_rising_branch(self, stack_curve):
        i_mpp, _ = stack_curve.max_power_point()
        assert stack_curve.current_for_power(10.0) < i_mpp

    def test_zero_power(self, stack_curve):
        assert stack_curve.current_for_power(0.0) == 0.0

    def test_over_capacity_rejected(self, stack_curve):
        with pytest.raises(RangeError):
            stack_curve.current_for_power(25.0)

    def test_negative_power_rejected(self, stack_curve):
        with pytest.raises(RangeError):
            stack_curve.current_for_power(-1.0)


class TestSweep:
    def test_sweep_shapes(self, stack_curve):
        i, v, p = stack_curve.sweep(n_points=50)
        assert len(i) == len(v) == len(p) == 50
        assert i[0] == 0.0

    def test_sweep_respects_i_max(self, stack_curve):
        i, _, _ = stack_curve.sweep(n_points=10, i_max=1.0)
        assert i[-1] == pytest.approx(1.0)

    def test_single_cell_vs_stack_scaling(self):
        one = PolarizationCurve(BCS_20W_CELL, n_cells=1)
        twenty = PolarizationCurve(BCS_20W_CELL, n_cells=20)
        assert twenty.stack_voltage(0.5) == pytest.approx(20 * one.cell_voltage(0.5))

    def test_rejects_zero_cells(self):
        with pytest.raises(ConfigurationError):
            PolarizationCurve(BCS_20W_CELL, n_cells=0)
