"""Discrete FC output level tests (ISLPED'06 setting)."""

import pytest

from repro.core.multilevel import (
    default_levels,
    quantization_loss_curve,
    solve_slot_discrete,
)
from repro.core.setting import SlotProblem
from repro.errors import ConfigurationError, InfeasibleError
from repro.fuelcell.efficiency import LinearSystemEfficiency


@pytest.fixture
def model() -> LinearSystemEfficiency:
    return LinearSystemEfficiency()


@pytest.fixture
def problem() -> SlotProblem:
    return SlotProblem(t_idle=20, t_active=10, i_idle=0.2, i_active=1.2,
                       c_ini=3.0, c_end=3.0, c_max=200.0)


class TestDefaultLevels:
    def test_spans_load_following_range(self, model):
        levels = default_levels(model, 6)
        assert levels[0] == model.if_min
        assert levels[-1] == model.if_max
        assert len(levels) == 6

    def test_rejects_single_level(self, model):
        with pytest.raises(ConfigurationError):
            default_levels(model, 1)


class TestSolveDiscrete:
    def test_discrete_never_beats_continuous(self, model, problem):
        # Effective fuel (fuel + replacement cost of any end-of-slot
        # shortfall) can never beat the exact-balance continuous optimum.
        result = solve_slot_discrete(problem, model, default_levels(model, 6))
        assert result.effective_fuel >= result.continuous_fuel - 1e-9
        assert result.quantization_penalty >= -1e-9

    def test_levels_come_from_lattice(self, model, problem):
        levels = default_levels(model, 4)
        result = solve_slot_discrete(problem, model, levels)
        assert result.solution.if_idle in levels
        assert result.solution.if_active in levels

    def test_dense_lattice_approaches_continuous(self, model, problem):
        coarse = solve_slot_discrete(problem, model, default_levels(model, 3))
        fine = solve_slot_discrete(problem, model, default_levels(model, 48))
        assert fine.quantization_penalty <= coarse.quantization_penalty + 1e-9
        assert fine.quantization_penalty < 0.1

    def test_no_deficit_in_solution(self, model, problem):
        result = solve_slot_discrete(problem, model, default_levels(model, 6))
        assert result.solution.deficit == 0.0
        assert result.solution.c_after_slot >= 0.0

    def test_infeasible_lattice_raises(self, model):
        # Heavy active demand with an empty storage: only high output
        # carries it, but the lattice below is too sparse... force it by
        # offering only the range floor.
        p = SlotProblem(t_idle=1, t_active=30, i_idle=0.2, i_active=1.2,
                        c_ini=0.0, c_end=0.0, c_max=3.0)
        with pytest.raises(InfeasibleError):
            solve_slot_discrete(p, model, (0.1, 0.12))

    def test_rejects_out_of_range_levels(self, model, problem):
        with pytest.raises(ConfigurationError):
            solve_slot_discrete(problem, model, (0.1, 1.5))

    def test_balance_weight_prevents_storage_raiding(self, model):
        # With a nonzero target, a weak penalty would prefer draining the
        # storage; the default must keep the end state near the target.
        p = SlotProblem(t_idle=20, t_active=10, i_idle=0.2, i_active=1.0,
                        c_ini=5.0, c_end=5.0, c_max=10.0)
        result = solve_slot_discrete(p, model, default_levels(model, 12))
        assert abs(result.solution.c_after_slot - 5.0) < 1.0

    def test_capacity_limited_flag_and_bleed(self, model):
        # Even the lowest level overfills a tiny storage during a long idle.
        p = SlotProblem(t_idle=500, t_active=10, i_idle=0.0, i_active=1.0,
                        c_ini=1.0, c_end=1.0, c_max=2.0)
        result = solve_slot_discrete(p, model, default_levels(model, 4))
        assert result.solution.bled > 0
        assert result.solution.capacity_limited


class TestQuantizationCurve:
    def test_monotone_on_nested_lattices(self, model, problem):
        # Default counts are 2**k + 1: each lattice refines the previous
        # one, so the penalty cannot increase.
        curve = quantization_loss_curve(problem, model)
        penalties = list(curve.values())
        for a, b in zip(penalties, penalties[1:]):
            assert b <= a + 1e-9

    def test_diminishing_returns(self, model, problem):
        curve = quantization_loss_curve(problem, model,
                                        level_counts=(3, 9, 33))
        assert curve[33] < 0.1  # 33 set-points ~ continuous (<1% of fuel)
        assert curve[3] > curve[33]
