"""Sensitivity bench: which measured constants carry the Table-2 result."""

from repro.analysis.report import format_table
from repro.analysis.sensitivity import sensitivity_analysis, tornado_ranking


def test_bench_parameter_sensitivity(benchmark, emit):
    analysis = benchmark.pedantic(
        sensitivity_analysis, kwargs={"relative": 0.2}, rounds=1, iterations=1
    )
    ranking = tornado_ranking(analysis)

    rows = [["parameter (+-20%)", "fc fuel @ -20%", "@ nominal", "@ +20%",
             "swing"]]
    for name, swing in ranking:
        low, mid, high = analysis[name]
        rows.append(
            [name, f"{low.fc_normalized:.3f}", f"{mid.fc_normalized:.3f}",
             f"{high.fc_normalized:.3f}", f"{swing:.3f}"]
        )
    emit(
        "sensitivity",
        "SENSITIVITY -- FC-DPM normalized fuel vs +-20% parameter swings\n"
        + format_table(rows)
        + "\nreading: the workload mix (idle_scale) and the efficiency "
        "law (alpha, beta) dominate; the prediction factor rho is noise.",
    )
    ranked = dict(ranking)
    assert ranked["rho"] < min(ranked["alpha"], ranked["idle_scale"])
