"""Energy-density claim-check tests (the intro's 4-10x)."""

import pytest

from repro.analysis.energy_density import (
    FC_PACK_HIGH,
    FC_PACK_LOW,
    LI_ION_PACK,
    PackModel,
    camcorder_comparison,
    compare_packs,
)
from repro.errors import ConfigurationError


class TestPackModel:
    def test_usable_energy(self):
        pack = PackModel(specific_energy_wh_kg=150.0, usable_fraction=0.8)
        assert pack.usable_energy_wh(0.5) == pytest.approx(60.0)

    def test_runtime(self):
        pack = PackModel(specific_energy_wh_kg=150.0, usable_fraction=0.8)
        assert pack.runtime_hours(0.5, load_power_w=6.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PackModel(specific_energy_wh_kg=0.0, usable_fraction=0.5)
        with pytest.raises(ConfigurationError):
            PackModel(specific_energy_wh_kg=100.0, usable_fraction=0.0)
        pack = PackModel(specific_energy_wh_kg=100.0, usable_fraction=0.5)
        with pytest.raises(ConfigurationError):
            pack.usable_energy_wh(0.0)
        with pytest.raises(ConfigurationError):
            pack.runtime_hours(0.5, 0.0)


class TestComparison:
    def test_fc_outlasts_battery(self):
        c = compare_packs(load_power_w=6.0)
        assert c.fc_low_hours > c.battery_hours
        assert c.fc_high_hours > c.fc_low_hours

    def test_advantage_band_covers_papers_claim(self):
        # The intro's "4 to 10X" must intersect [advantage_low, advantage_high].
        c = compare_packs(load_power_w=6.0)
        assert c.matches_paper_band
        assert 1.5 < c.advantage_low < 4.5
        assert 4.0 < c.advantage_high < 12.0

    def test_mass_cancels_in_ratio(self):
        a = compare_packs(load_power_w=6.0, mass_kg=0.25)
        b = compare_packs(load_power_w=6.0, mass_kg=1.0)
        assert a.advantage_low == pytest.approx(b.advantage_low)

    def test_camcorder_average_power_plausible(self):
        c = camcorder_comparison()
        # ~6 W average -> a 0.5 kg Li-ion pack lasts ~8-14 h.
        assert 5.0 < c.battery_hours < 20.0
        assert c.matches_paper_band

    def test_reference_packs_sane(self):
        assert LI_ION_PACK.specific_energy_wh_kg == 150.0
        assert FC_PACK_LOW.usable_fraction < LI_ION_PACK.usable_fraction
        assert FC_PACK_HIGH.specific_energy_wh_kg > FC_PACK_LOW.specific_energy_wh_kg
