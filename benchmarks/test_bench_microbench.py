"""Micro-benchmarks of the hot paths (throughput numbers for the README).

These are conventional performance benches: the closed-form slot solver
must stay in the microsecond range (it runs once per task slot online),
and a full 28-minute trace simulation must remain interactive.
"""

from repro.core.manager import PowerManager
from repro.core.optimizer import solve_slot
from repro.core.setting import SlotProblem
from repro.devices.camcorder import camcorder_device_params
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.sim.slotsim import SlotSimulator
from repro.workload.mpeg import generate_mpeg_trace

MODEL = LinearSystemEfficiency()
PROBLEM = SlotProblem(
    t_idle=12.0, t_active=3.0, i_idle=0.2, i_active=1.22,
    c_ini=3.0, c_end=3.0, c_max=6.0, sleeping=True,
    t_wu=0.5, t_pd=0.5, i_wu=0.4, i_pd=0.4,
)


def test_bench_solve_slot_closed_form(benchmark):
    """One online FC-DPM decision (must be trivially cheap)."""
    solution = benchmark(solve_slot, PROBLEM, MODEL)
    assert solution.fuel > 0


def test_bench_fuel_map_evaluation(benchmark):
    """A single Eq. 4 evaluation."""
    value = benchmark(MODEL.fc_current, 0.5333)
    assert abs(value - 0.448) < 1e-3


def test_bench_trace_generation(benchmark):
    """28-minute MPEG trace synthesis."""
    trace = benchmark(generate_mpeg_trace)
    assert len(trace) > 50


def test_bench_full_simulation_fc_dpm(benchmark):
    """End-to-end FC-DPM simulation of the 28-minute trace."""
    trace = generate_mpeg_trace()
    dev = camcorder_device_params()

    def run():
        mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
        return SlotSimulator(mgr).run(trace)

    result = benchmark(run)
    assert result.fuel > 0
