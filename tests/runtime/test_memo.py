"""Unit tests for the solver memoization layer."""

import pytest

from repro.core.optimizer import solve_slot
from repro.core.setting import SlotProblem
from repro.fuelcell.efficiency import (
    ComposedSystemEfficiency,
    ConstantSystemEfficiency,
    LinearSystemEfficiency,
)
from repro.runtime.memo import (
    clear_solver_cache,
    solve_slot_memo,
    solver_cache_size,
    solver_cache_stats,
)

PROBLEM = SlotProblem(
    t_idle=12.0, t_active=3.0, i_idle=0.2, i_active=1.22,
    c_ini=3.0, c_end=3.0, c_max=6.0, sleeping=True,
    t_wu=0.5, t_pd=0.5, i_wu=0.4, i_pd=0.4,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_solver_cache()
    yield
    clear_solver_cache()


class TestEquivalence:
    def test_identical_to_direct_solve(self):
        model = LinearSystemEfficiency()
        assert solve_slot_memo(PROBLEM, model) == solve_slot(PROBLEM, model)

    def test_hit_returns_same_object(self):
        model = LinearSystemEfficiency()
        first = solve_slot_memo(PROBLEM, model)
        assert solve_slot_memo(PROBLEM, model) is first

    def test_shared_across_equal_model_instances(self):
        a = LinearSystemEfficiency()
        b = LinearSystemEfficiency()
        solve_slot_memo(PROBLEM, a)
        before = solver_cache_stats().hits
        solve_slot_memo(PROBLEM, b)
        assert solver_cache_stats().hits == before + 1

    def test_distinct_models_do_not_collide(self):
        lo = LinearSystemEfficiency(beta=0.0)
        hi = LinearSystemEfficiency(beta=0.13)
        assert solve_slot_memo(PROBLEM, lo) != solve_slot_memo(PROBLEM, hi)

    def test_distinct_problems_do_not_collide(self):
        model = LinearSystemEfficiency()
        other = SlotProblem(
            t_idle=11.0, t_active=3.0, i_idle=0.2, i_active=1.22,
            c_ini=3.0, c_end=3.0, c_max=6.0,
        )
        solve_slot_memo(PROBLEM, model)
        assert solve_slot_memo(other, model) == solve_slot(other, model)
        assert solver_cache_size() == 2


class TestCacheTokens:
    def test_linear_token_is_value_semantics(self):
        assert (
            LinearSystemEfficiency().cache_token
            == LinearSystemEfficiency().cache_token
        )
        assert (
            LinearSystemEfficiency(beta=0.1).cache_token
            != LinearSystemEfficiency(beta=0.2).cache_token
        )

    def test_constant_model_has_token(self):
        assert ConstantSystemEfficiency().cache_token is not None

    def test_composed_model_not_cacheable(self):
        model = ComposedSystemEfficiency()
        assert model.cache_token is None
        before = solver_cache_size()
        result = solve_slot_memo(PROBLEM, model)
        assert solver_cache_size() == before
        assert solver_cache_stats().uncacheable >= 1
        assert result == solve_slot(PROBLEM, model)


class TestStats:
    def test_counters(self):
        model = LinearSystemEfficiency()
        solve_slot_memo(PROBLEM, model)
        solve_slot_memo(PROBLEM, model)
        solve_slot_memo(PROBLEM, model)
        stats = solver_cache_stats()
        assert stats.misses == 1
        assert stats.hits == 2
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_clear_resets(self):
        model = LinearSystemEfficiency()
        solve_slot_memo(PROBLEM, model)
        clear_solver_cache()
        assert solver_cache_size() == 0
        assert solver_cache_stats().hits == 0
        assert solver_cache_stats().misses == 0

    def test_empty_hit_rate(self):
        assert solver_cache_stats().hit_rate == 0.0
