"""Clairvoyant FC-DPM tests: the prediction-cost decomposition."""

import pytest

from repro.core.manager import PowerManager
from repro.core.oracle_controller import OracleFCDPMController
from repro.devices.camcorder import camcorder_device_params
from repro.errors import ConfigurationError
from repro.fuelcell.efficiency import LinearSystemEfficiency
from repro.sim.slotsim import SlotSimulator
from repro.workload.mpeg import generate_mpeg_trace


@pytest.fixture(scope="module")
def trace():
    return generate_mpeg_trace(seed=2007)


@pytest.fixture(scope="module")
def dev():
    return camcorder_device_params()


def oracle_manager(trace, dev) -> PowerManager:
    model = LinearSystemEfficiency()
    mgr = PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
    mgr.name = "oracle-fc-dpm"
    mgr.controller = OracleFCDPMController(model, trace, device=dev)
    return mgr


@pytest.fixture(scope="module")
def fuels(trace, dev):
    predicted = SlotSimulator(
        PowerManager.fc_dpm(dev, storage_capacity=6.0, storage_initial=3.0)
    ).run(trace)
    oracle = SlotSimulator(oracle_manager(trace, dev)).run(trace)
    return {"fc-dpm": predicted.fuel, "oracle": oracle.fuel,
            "result": oracle}


class TestOracle:
    def test_oracle_never_worse_than_predicted(self, fuels):
        assert fuels["oracle"] <= fuels["fc-dpm"] + 1e-6

    def test_prediction_cost_is_small(self, fuels):
        """On the smooth MPEG workload, prediction costs < 2 % fuel --
        the robustness the paper's simple filter relies on."""
        gap = fuels["fc-dpm"] / fuels["oracle"] - 1.0
        assert 0.0 <= gap < 0.02

    def test_oracle_above_offline_bound(self, fuels, trace, dev):
        """Per-slot planning (Cend = Cini each slot) still pays versus
        the whole-horizon optimum."""
        model = LinearSystemEfficiency()
        result = fuels["result"]
        avg = result.load_charge / result.duration
        bound = model.fc_current(avg) * result.duration
        assert fuels["oracle"] >= bound - 1e-6

    def test_no_deficit(self, fuels):
        assert fuels["result"].deficit == 0.0

    def test_index_out_of_range_rejected(self, trace, dev):
        from repro.core.baselines import SlotStart

        controller = OracleFCDPMController(LinearSystemEfficiency(), trace)
        controller.start_run(3.0, 6.0)
        with pytest.raises(ConfigurationError):
            controller.on_idle_start(
                SlotStart(len(trace), False, 0.2, 3.0)
            )

    def test_does_not_feed_shared_predictors(self, trace, dev):
        controller = OracleFCDPMController(LinearSystemEfficiency(), trace)
        assert not controller.observes_idle
