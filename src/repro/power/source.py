"""The ``PowerSource`` protocol: pluggable plants behind the power manager.

The paper evaluates one fixed plant -- a single FC system plus one
charge-storage element (:class:`~repro.power.hybrid.HybridPowerSource`).
Everything downstream of the plant (controllers, both simulators, the
metrics layer) only ever needs four things:

* command an output current (``set_fc_output``),
* integrate one constant-load interval (``step``),
* read the storage state (``storage.charge`` / ``storage.capacity``),
* read the conservation ledger (``total_fuel`` / ``total_load_charge``
  / ``bled`` / ``deficit``).

:class:`PowerSource` names that seam.  Concrete plants -- the reference
hybrid, :class:`~repro.power.multistack.MultiStackHybrid`, and
:class:`~repro.power.battery_only.BatteryOnlySource` -- implement a
single hook (:meth:`PowerSource._generate`) describing how the plant
produces current and burns fuel for one interval; the base class owns
the storage bookkeeping and the ledger, so the conservation math exists
exactly once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import RangeError
from ..obs import OBS
from .storage import ChargeStorage


@dataclass(frozen=True)
class SourceStep:
    """Record of one constant-current interval of source operation."""

    #: Interval length (s).
    dt: float
    #: Embedded-system load current (A).
    i_load: float
    #: Source output current delivered toward the rail (A).
    i_f: float
    #: Fuel-rate current (A) -- total stack current; 0 for fuel-free sources.
    i_fc: float
    #: Fuel consumed this interval (stack A-s).
    fuel: float
    #: Signed storage charge change actually applied (A-s).
    storage_delta: float
    #: Charge dissipated in the bleeder this interval (A-s).
    bled: float
    #: Unmet load charge this interval (A-s); nonzero means brown-out.
    deficit: float
    #: Storage charge after the interval (A-s).
    storage_charge: float
    #: Per-generator output currents (A); one entry per FC stack, empty
    #: for sources without stacks.
    stack_currents: tuple[float, ...] = ()
    #: Which kind of plant produced this step ('hybrid', 'multi-stack',
    #: 'battery', ...) -- threaded into recorder samples for plotting.
    source_kind: str = ""


class PowerSource(ABC):
    """Abstract plant: generator(s) + charge storage + conservation ledger.

    Subclasses implement :meth:`_generate` (how much current the plant
    sources and what fuel that costs over ``dt``) and
    :meth:`set_fc_output` (how a commanded output current is realised).
    The base class integrates the storage, maintains the ledger the
    paper tabulates, and keeps the optional step history.
    """

    #: Short identifier recorded on every :class:`SourceStep`.
    kind: str = "source"

    def __init__(self, storage: ChargeStorage) -> None:
        self.storage = storage
        self.total_fuel = 0.0
        self.total_load_charge = 0.0
        self.total_time = 0.0
        self.total_delivered_charge = 0.0
        self.history: list[SourceStep] = []
        # One SourceStep per segment is unbounded memory over long
        # sweeps; everything the metrics layer needs lives in the
        # running ledger, so history stays off unless a consumer that
        # actually replays steps (the Recorder) switches it on.
        self.record_history = False

    # -- plant hooks --------------------------------------------------------

    @property
    @abstractmethod
    def v_out(self) -> float:
        """Regulated rail voltage the load charge is delivered at (V)."""

    @abstractmethod
    def set_fc_output(self, i_f: float, *, clamp: bool = True) -> float:
        """Command the plant output current; returns the value realised."""

    @abstractmethod
    def _generate(
        self, dt: float, strict_fuel: bool
    ) -> tuple[float, float, float, tuple[float, ...]]:
        """Produce current for ``dt`` seconds at the commanded setting.

        Returns ``(i_f, i_fc, fuel, stack_currents)``: the output current
        actually sourced, the total stack (fuel-rate) current, the fuel
        consumed (stack A-s), and the per-stack output currents.
        """

    # -- dynamics ------------------------------------------------------------

    def step(self, i_load: float, dt: float, *, strict_fuel: bool = True) -> SourceStep:
        """Advance ``dt`` seconds with constant load ``i_load`` (A).

        The plant holds its commanded output; the storage absorbs or
        sources the difference.  Returns the step ledger entry.
        """
        if i_load < 0:
            raise RangeError("load current cannot be negative")
        if dt < 0:
            raise RangeError("dt cannot be negative")

        i_f, i_fc, fuel, stack_currents = self._generate(dt, strict_fuel)

        bled_before = self.storage.bled_charge
        deficit_before = self.storage.deficit_charge
        delta = self.storage.step(i_f - i_load, dt)
        bled = self.storage.bled_charge - bled_before
        deficit = self.storage.deficit_charge - deficit_before

        self.total_fuel += fuel
        self.total_load_charge += i_load * dt
        self.total_time += dt
        self.total_delivered_charge += i_f * dt
        if OBS.enabled:
            OBS.metrics.counter("power.source.steps", kind=self.kind).inc()
            OBS.metrics.counter("power.source.delivered_charge").inc(i_f * dt)
            OBS.metrics.counter("power.source.fuel").inc(fuel)

        record = SourceStep(
            dt=dt,
            i_load=i_load,
            i_f=i_f,
            i_fc=i_fc,
            fuel=fuel,
            storage_delta=delta,
            bled=bled,
            deficit=deficit,
            storage_charge=self.storage.charge,
            stack_currents=stack_currents,
            source_kind=self.kind,
        )
        if self.record_history:
            self.history.append(record)
        return record

    # -- reporting -----------------------------------------------------------

    @property
    def delivered_energy(self) -> float:
        """Energy delivered to the load so far (J) at the regulated rail."""
        return self.v_out * self.total_load_charge

    @property
    def average_fuel_rate(self) -> float:
        """Mean stack current over the run (A)."""
        if self.total_time == 0:
            return 0.0
        return self.total_fuel / self.total_time

    def reset(self, storage_charge: float = 0.0) -> None:
        """Reset ledgers and storage for a fresh run."""
        self.total_fuel = 0.0
        self.total_load_charge = 0.0
        self.total_time = 0.0
        self.total_delivered_charge = 0.0
        self.history.clear()
        self.storage.reset(storage_charge)
