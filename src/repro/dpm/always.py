"""Degenerate DPM policies: never sleep / always sleep.

Bounding baselines for policy comparisons: ``AlwaysOnPolicy`` gives the
no-DPM device energy, ``AlwaysSleepPolicy`` the maximally aggressive
(and, below break-even, counterproductive) extreme.
"""

from __future__ import annotations

from ..devices.device import DeviceParams
from .policy import DPMPolicy, IdleDecision


class AlwaysOnPolicy(DPMPolicy):
    """Never sleeps; the device idles in STANDBY."""

    def on_idle_start(self) -> IdleDecision:
        return self._count(IdleDecision(sleep=False))


class AlwaysSleepPolicy(DPMPolicy):
    """Sleeps on every idle period that can physically host the transitions.

    The feasibility check needs the *actual* idle length, which an online
    policy does not have; like the paper's predictive scheme we commit
    using the transition latency as the only guard -- the simulator
    charges an aborted-sleep penalty if the period turns out too short.
    """

    def __init__(self, params: DeviceParams) -> None:
        super().__init__(params)

    def on_idle_start(self) -> IdleDecision:
        return self._count(IdleDecision(sleep=True, sleep_after=0.0))
