"""Balance-of-plant controller model tests."""

import pytest

from repro.errors import ConfigurationError, RangeError
from repro.fuelcell.controller import OnOffFanController, ProportionalFanController


class TestOnOffFan:
    def test_base_draw_below_threshold(self):
        c = OnOffFanController(i_base=0.05, i_fan=0.14, threshold=0.55)
        assert c.current(0.3) == pytest.approx(0.05)

    def test_fan_added_above_threshold(self):
        c = OnOffFanController(i_base=0.05, i_fan=0.14, threshold=0.55)
        assert c.current(0.8) == pytest.approx(0.19)

    def test_step_is_sharp(self):
        c = OnOffFanController(threshold=0.55)
        assert c.current(0.55) < c.current(0.5501)

    def test_rejects_negative_load(self):
        with pytest.raises(RangeError):
            OnOffFanController().current(-0.1)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ConfigurationError):
            OnOffFanController(i_base=-0.01)


class TestProportionalFan:
    def test_nearly_free_at_light_load(self):
        c = ProportionalFanController()
        # Cubic law: at 0.1 A the fan draw is negligible versus base.
        assert c.current(0.1) == pytest.approx(c.i_base, abs=0.001)

    def test_substantial_at_full_load(self):
        c = ProportionalFanController()
        assert c.current(1.2) > 0.2

    def test_cubic_scaling(self):
        c = ProportionalFanController(i_base=0.0, coeff=0.1, exponent=3.0)
        assert c.current(1.0) == pytest.approx(0.1)
        assert c.current(2.0) == pytest.approx(0.8)

    def test_monotone(self):
        c = ProportionalFanController()
        vals = [c.current(x) for x in (0.1, 0.4, 0.8, 1.2)]
        assert vals == sorted(vals)

    def test_rejects_negative_load(self):
        with pytest.raises(RangeError):
            ProportionalFanController().current(-0.5)

    def test_rejects_sub_linear_exponent(self):
        with pytest.raises(ConfigurationError):
            ProportionalFanController(exponent=0.5)

    def test_rejects_negative_coeff(self):
        with pytest.raises(ConfigurationError):
            ProportionalFanController(coeff=-1.0)
