"""CSV export tests."""

import csv

import pytest

from repro.analysis.export import export_all, export_fig2, export_tables
from repro.errors import ConfigurationError


class TestExport:
    def test_fig2_csv_roundtrips(self, tmp_path):
        path = export_fig2(tmp_path)
        with open(path) as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["i_fc_a", "v_fc_v", "p_w"]
        assert len(rows) > 100
        first = [float(x) for x in rows[1]]
        assert first[1] == pytest.approx(18.2, abs=0.01)  # Voc

    def test_tables_csv(self, tmp_path):
        path = export_tables(tmp_path)
        with open(path) as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["table", "policy", "measured", "paper"]
        assert len(rows) == 7  # header + 2 tables x 3 policies
        by_key = {(r[0], r[1]): float(r[2]) for r in rows[1:]}
        assert by_key[("table2", "conv-dpm")] == 1.0
        assert by_key[("table2", "fc-dpm")] < by_key[("table2", "asap-dpm")]

    def test_export_all_writes_six_files(self, tmp_path):
        paths = export_all(tmp_path / "artifacts")
        assert len(paths) == 6  # 5 CSVs + the provenance manifest
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 50
        assert paths[-1].name == "manifest.json"

    def test_rejects_file_as_directory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(ConfigurationError):
            export_all(blocker)
